package hostif

import (
	"testing"
	"testing/quick"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/link"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/sim"
	"deadlineqos/internal/units"
)

// testSink records packets leaving a host via its injection link.
type testSink struct {
	eng  *sim.Engine
	l    *link.Link
	got  []*packet.Packet
	when []units.Time
}

func (s *testSink) Receive(p *packet.Packet) {
	p.UnpackTTD(s.eng.Now())
	s.got = append(s.got, p)
	s.when = append(s.when, s.eng.Now())
	// Credit the VC the packet actually travelled on: the ingress policer
	// may have demoted it below its class's usual VC.
	s.l.ReturnCredits(p.VC, p.Size)
}

type hostRig struct {
	eng  *sim.Engine
	host *Host
	sink *testSink
	gen  []*packet.Packet
}

func newHostRig(t *testing.T, a arch.Arch, lead units.Time) *hostRig {
	t.Helper()
	eng := sim.New()
	r := &hostRig{eng: eng}
	h := New(Config{
		Eng:          eng,
		Clock:        packet.Clock{Base: eng.Now},
		ID:           0,
		Arch:         a,
		MTU:          2 * units.Kilobyte,
		EligibleLead: lead,
		IDs:          &IDSource{},
		Hooks: Hooks{
			// Snapshot at generation time: the TTD mechanism rewrites
			// p.Deadline at every hop, so the live packet's value changes.
			Generated: func(p *packet.Packet) { cp := *p; r.gen = append(r.gen, &cp) },
		},
	})
	sink := &testSink{eng: eng}
	l := link.New(eng, 1, 10, 8*units.Kilobyte, sink)
	sink.l = l
	h.ConnectOut(l)
	r.host, r.sink = h, sink
	return r
}

func bwFlow(id packet.FlowID, cl packet.Class, bw units.Bandwidth) *Flow {
	return &Flow{ID: id, Class: cl, Src: 0, Dst: 1, Route: []int{0}, Mode: ByBandwidth, BW: bw}
}

func TestSegmentation(t *testing.T) {
	r := newHostRig(t, arch.Simple2VC, 0)
	r.host.AddFlow(bwFlow(1, packet.Control, 1))
	// 5000-byte payload with MTU 2048 (2040 payload per packet): 3 parts.
	r.eng.At(0, func() { r.host.SubmitMessage(1, 5000) })
	r.eng.Run(units.Millisecond)
	if len(r.gen) != 3 {
		t.Fatalf("generated %d packets, want 3", len(r.gen))
	}
	var total units.Size
	for i, p := range r.gen {
		total += p.Size - packet.HeaderSize
		if p.Size > 2*units.Kilobyte {
			t.Fatalf("packet %d exceeds MTU: %v", i, p.Size)
		}
		if p.FrameParts != 3 {
			t.Fatalf("FrameParts = %d, want 3", p.FrameParts)
		}
		if p.Seq != uint64(i) {
			t.Fatalf("seq %d, want %d", p.Seq, i)
		}
	}
	if total != 5000 {
		t.Fatalf("payload bytes = %v, want 5000", total)
	}
	if len(r.sink.got) != 3 {
		t.Fatalf("delivered %d, want 3", len(r.sink.got))
	}
}

func TestVirtualClockDeadlines(t *testing.T) {
	r := newHostRig(t, arch.Simple2VC, 0)
	r.host.AddFlow(bwFlow(1, packet.Multimedia, 0.25)) // 2 Gb/s reserved
	r.eng.At(1000, func() { r.host.SubmitMessage(1, 1000) })
	r.eng.Run(units.Millisecond)
	// One packet of 1008 wire bytes at 0.25 B/cycle: D = 1000 + 4032.
	if len(r.gen) != 1 {
		t.Fatalf("generated %d packets", len(r.gen))
	}
	if r.gen[0].Deadline != 5032 {
		t.Fatalf("deadline = %v, want 5032", r.gen[0].Deadline)
	}
}

func TestVirtualClockAccumulatesAcrossMessages(t *testing.T) {
	// Two back-to-back submissions: the second message's deadline chains
	// from the first (max(D_prev, Tnow) = D_prev), enforcing the average
	// rate even for bursts.
	r := newHostRig(t, arch.Simple2VC, 0)
	r.host.AddFlow(bwFlow(1, packet.Control, 0.5))
	r.eng.At(100, func() {
		r.host.SubmitMessage(1, 492) // 500 wire bytes -> +1000 cycles
		r.host.SubmitMessage(1, 492)
	})
	r.eng.Run(units.Millisecond)
	if r.gen[0].Deadline != 1100 {
		t.Fatalf("first deadline = %v, want 1100", r.gen[0].Deadline)
	}
	if r.gen[1].Deadline != 2100 {
		t.Fatalf("second deadline = %v, want 2100 (chained)", r.gen[1].Deadline)
	}
}

func TestVirtualClockResetsAfterIdle(t *testing.T) {
	// After a long idle period Tnow > D_prev, so the deadline restarts
	// from Tnow.
	r := newHostRig(t, arch.Simple2VC, 0)
	r.host.AddFlow(bwFlow(1, packet.Control, 0.5))
	r.eng.At(100, func() { r.host.SubmitMessage(1, 492) })
	r.eng.At(50_000, func() { r.host.SubmitMessage(1, 492) })
	r.eng.Run(units.Millisecond)
	if r.gen[1].Deadline != 51_000 {
		t.Fatalf("post-idle deadline = %v, want 51000", r.gen[1].Deadline)
	}
}

func TestFrameLatencyDeadlines(t *testing.T) {
	// §3.1's example: a frame split into Parts packets, each advancing
	// the deadline by target/Parts, so the last packet's deadline is
	// submission + target.
	r := newHostRig(t, arch.Simple2VC, 0)
	r.host.AddFlow(&Flow{ID: 1, Class: packet.Multimedia, Src: 0, Dst: 1, Route: []int{0},
		Mode: FrameLatency, Target: 10 * units.Millisecond})
	r.eng.At(0, func() { r.host.SubmitMessage(1, 81600) }) // 40 packets of 2040
	r.eng.Run(20 * units.Millisecond)
	if len(r.gen) != 40 {
		t.Fatalf("generated %d packets, want 40", len(r.gen))
	}
	last := r.gen[39]
	if last.Deadline != 10*units.Millisecond {
		t.Fatalf("last packet deadline = %v, want 10ms", last.Deadline)
	}
	step := r.gen[1].Deadline - r.gen[0].Deadline
	if step != 10*units.Millisecond/40 {
		t.Fatalf("deadline step = %v, want 250us", step)
	}
}

func TestFrameLatencyIndependentOfFrameSize(t *testing.T) {
	// A small and a large frame (after the flow has gone idle in
	// between) both get ~target for their final deadline relative to
	// submission time.
	r := newHostRig(t, arch.Simple2VC, 0)
	r.host.AddFlow(&Flow{ID: 1, Class: packet.Multimedia, Src: 0, Dst: 1, Route: []int{0},
		Mode: FrameLatency, Target: 10 * units.Millisecond})
	r.eng.At(0, func() { r.host.SubmitMessage(1, 2040) }) // 1 packet
	r.eng.At(100*units.Millisecond, func() { r.host.SubmitMessage(1, 102000) })
	r.eng.Run(300 * units.Millisecond)
	if d := r.gen[0].Deadline; d != 10*units.Millisecond {
		t.Fatalf("small frame deadline = %v, want 10ms", d)
	}
	lastBig := r.gen[len(r.gen)-1]
	if d := lastBig.Deadline - 100*units.Millisecond; d != 10*units.Millisecond {
		t.Fatalf("big frame final deadline offset = %v, want 10ms", d)
	}
}

func TestEligibleTimeShaping(t *testing.T) {
	// With a 20us lead and deadlines far in the future, packets must not
	// be injected before deadline - 20us.
	r := newHostRig(t, arch.Advanced2VC, 20*units.Microsecond)
	r.host.AddFlow(&Flow{ID: 1, Class: packet.Multimedia, Src: 0, Dst: 1, Route: []int{0},
		Mode: FrameLatency, Target: units.Millisecond, UseEligible: true})
	r.eng.At(0, func() { r.host.SubmitMessage(1, 2040) }) // deadline = 1ms
	r.eng.Run(10 * units.Millisecond)
	if len(r.sink.got) != 1 {
		t.Fatalf("delivered %d, want 1", len(r.sink.got))
	}
	injected := r.sink.got[0].InjectedAt
	eligible := units.Millisecond - 20*units.Microsecond
	if injected < eligible {
		t.Fatalf("injected at %v before eligible time %v", injected, eligible)
	}
	if injected > eligible+10*units.Microsecond {
		t.Fatalf("injected at %v, long after eligible time %v", injected, eligible)
	}
}

func TestEligibleShapingSmoothsBursts(t *testing.T) {
	// A 10-packet frame due in 1ms: without shaping all inject
	// back-to-back at t~0; with shaping injections spread out by
	// target/Parts.
	r := newHostRig(t, arch.Advanced2VC, 20*units.Microsecond)
	r.host.AddFlow(&Flow{ID: 1, Class: packet.Multimedia, Src: 0, Dst: 1, Route: []int{0},
		Mode: FrameLatency, Target: units.Millisecond, UseEligible: true})
	r.eng.At(0, func() { r.host.SubmitMessage(1, 20400) })
	r.eng.Run(10 * units.Millisecond)
	if len(r.sink.got) != 10 {
		t.Fatalf("delivered %d, want 10", len(r.sink.got))
	}
	// Spacing between consecutive injections should be ~100us (the
	// deadline step), not the 2us serialisation time.
	var gaps []units.Time
	for i := 1; i < len(r.sink.got); i++ {
		gaps = append(gaps, r.sink.got[i].InjectedAt-r.sink.got[i-1].InjectedAt)
	}
	for i, g := range gaps {
		if g < 50*units.Microsecond {
			t.Fatalf("gap %d = %v: burst not smoothed (gaps %v)", i, g, gaps)
		}
	}
}

func TestTraditionalIgnoresEligibleTime(t *testing.T) {
	r := newHostRig(t, arch.Traditional2VC, 20*units.Microsecond)
	r.host.AddFlow(&Flow{ID: 1, Class: packet.Multimedia, Src: 0, Dst: 1, Route: []int{0},
		Mode: FrameLatency, Target: units.Millisecond, UseEligible: true})
	r.eng.At(0, func() { r.host.SubmitMessage(1, 2040) })
	r.eng.Run(10 * units.Millisecond)
	if len(r.sink.got) != 1 {
		t.Fatal("packet not delivered")
	}
	if inj := r.sink.got[0].InjectedAt; inj > 100*units.Microsecond {
		t.Fatalf("Traditional host delayed injection to %v", inj)
	}
}

func TestRegulatedPriorityAtInjection(t *testing.T) {
	// Queue lots of best-effort, then submit control: control must be
	// injected before the queued best-effort backlog.
	r := newHostRig(t, arch.Simple2VC, 0)
	r.host.AddFlow(bwFlow(1, packet.BestEffort, 0.01))
	r.host.AddFlow(bwFlow(2, packet.Control, 1))
	r.eng.At(0, func() {
		r.host.SubmitMessage(1, 20000) // ~10 BE packets
		r.host.SubmitMessage(2, 128)
	})
	r.eng.Run(units.Millisecond)
	// The control packet cannot pre-empt the BE packet already on the
	// wire, but must go next.
	pos := -1
	for i, p := range r.sink.got {
		if p.Class == packet.Control {
			pos = i
		}
	}
	if pos != 1 {
		t.Fatalf("control injected at position %d, want 1 (right after the in-flight packet)", pos)
	}
}

func TestBestEffortDeadlineOrderingAtHost(t *testing.T) {
	// Two BE flows with very different reserved bandwidths: the host's
	// deadline-ordered BE queue must interleave by deadline, giving the
	// higher-bandwidth flow more early slots.
	r := newHostRig(t, arch.Simple2VC, 0)
	r.host.AddFlow(bwFlow(1, packet.BestEffort, 0.5))  // fast
	r.host.AddFlow(bwFlow(2, packet.Background, 0.05)) // slow
	r.eng.At(0, func() {
		// Submit slow first so FIFO order would favour it.
		r.host.SubmitMessage(2, 10200) // 5 packets
		r.host.SubmitMessage(1, 10200)
	})
	r.eng.Run(units.Millisecond)
	if len(r.sink.got) != 10 {
		t.Fatalf("delivered %d, want 10", len(r.sink.got))
	}
	// Among the first five deliveries (excluding the unavoidable
	// head-of-line packet already chosen), the fast flow must dominate.
	fast := 0
	for _, p := range r.sink.got[:5] {
		if p.Class == packet.BestEffort {
			fast++
		}
	}
	if fast < 4 {
		t.Fatalf("fast BE flow got %d of first 5 slots, want >=4", fast)
	}
}

func TestSubmitUnknownFlowPanics(t *testing.T) {
	r := newHostRig(t, arch.Simple2VC, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown flow did not panic")
		}
	}()
	r.host.SubmitMessage(99, 100)
}

func TestAddFlowValidation(t *testing.T) {
	r := newHostRig(t, arch.Simple2VC, 0)
	r.host.AddFlow(bwFlow(1, packet.Control, 1))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate flow id did not panic")
			}
		}()
		r.host.AddFlow(bwFlow(1, packet.Control, 1))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("foreign src did not panic")
			}
		}()
		f := bwFlow(2, packet.Control, 1)
		f.Src = 5
		r.host.AddFlow(f)
	}()
}

func TestReceiveReturnsCredits(t *testing.T) {
	eng := sim.New()
	h := New(Config{Eng: eng, Clock: packet.Clock{Base: eng.Now}, ID: 1,
		Arch: arch.Simple2VC, MTU: 2 * units.Kilobyte, IDs: &IDSource{}})
	var delivered []*packet.Packet
	h.cfg.Hooks.Delivered = func(p *packet.Packet, _ units.Time) { delivered = append(delivered, p) }
	up := link.New(eng, 1, 10, 1*units.Kilobyte, h)
	h.SetUpstream(up)
	eng.At(0, func() {
		p := &packet.Packet{ID: 1, Class: packet.Control, VC: packet.VCRegulated, Size: 1024}
		p.PackTTD(eng.Now())
		up.Send(p)
	})
	eng.At(2000, func() {
		if up.Credits(packet.VCRegulated) != 1024 {
			t.Errorf("credits not returned: %v", up.Credits(packet.VCRegulated))
		}
	})
	eng.Drain()
	if len(delivered) != 1 || h.Received() != 1 {
		t.Fatal("packet not delivered to application")
	}
}

func TestPendingCount(t *testing.T) {
	r := newHostRig(t, arch.Advanced2VC, 20*units.Microsecond)
	r.host.AddFlow(&Flow{ID: 1, Class: packet.Multimedia, Src: 0, Dst: 1, Route: []int{0},
		Mode: FrameLatency, Target: 10 * units.Millisecond, UseEligible: true})
	r.eng.At(0, func() {
		r.host.SubmitMessage(1, 10000)
		if r.host.Pending() == 0 {
			t.Error("Pending() = 0 right after submit of shaped traffic")
		}
	})
	r.eng.Run(50 * units.Millisecond)
	if r.host.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain", r.host.Pending())
	}
}

func TestTraditionalHostFIFOWithinVC(t *testing.T) {
	// Under the Traditional architecture the NIC keeps plain FIFOs: two
	// best-effort flows drain in submission order even when the second
	// has far earlier deadlines.
	r := newHostRig(t, arch.Traditional2VC, 0)
	r.host.AddFlow(bwFlow(1, packet.BestEffort, 0.001)) // huge deadline steps
	r.host.AddFlow(bwFlow(2, packet.Background, 1))     // tiny deadline steps
	r.eng.At(0, func() {
		r.host.SubmitMessage(1, 4000) // ~2 packets, deadlines far out
		r.host.SubmitMessage(2, 4000) // ~2 packets, deadlines near
	})
	r.eng.Run(units.Millisecond)
	if len(r.sink.got) != 4 {
		t.Fatalf("delivered %d, want 4", len(r.sink.got))
	}
	for i, p := range r.sink.got {
		wantFlow := packet.FlowID(1)
		if i >= 2 {
			wantFlow = 2
		}
		if p.Flow != wantFlow {
			t.Fatalf("delivery %d from flow %d, want %d (FIFO violated)", i, p.Flow, wantFlow)
		}
	}
}

func TestHostFlowAccessor(t *testing.T) {
	r := newHostRig(t, arch.Simple2VC, 0)
	f := bwFlow(7, packet.Control, 1)
	r.host.AddFlow(f)
	if got := r.host.Flow(7); got != f {
		t.Fatal("Flow(7) did not return the registered record")
	}
	if got := r.host.Flow(99); got != nil {
		t.Fatal("Flow(99) returned a record for an unknown id")
	}
	if r.host.ID() != 0 {
		t.Fatalf("ID() = %d", r.host.ID())
	}
}

func TestSubmitNonPositiveSizePanics(t *testing.T) {
	r := newHostRig(t, arch.Simple2VC, 0)
	r.host.AddFlow(bwFlow(1, packet.Control, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size message did not panic")
		}
	}()
	r.host.SubmitMessage(1, 0)
}

func TestDeadlinesStrictlyIncreasePerFlow(t *testing.T) {
	// Property (appendix hypothesis 1): whatever the submission pattern,
	// a flow's packet deadlines strictly increase — the precondition for
	// the take-over queue's no-reorder guarantee.
	prop := func(seed uint64, sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		r := newHostRig(t, arch.Advanced2VC, 20*units.Microsecond)
		r.host.AddFlow(&Flow{ID: 1, Class: packet.Multimedia, Src: 0, Dst: 1,
			Route: []int{0}, Mode: FrameLatency, Target: 3 * units.Millisecond, UseEligible: true})
		r.host.AddFlow(bwFlow(2, packet.Control, 0.7))
		rng := seed
		next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
		at := units.Time(0)
		for _, raw := range sizes {
			at += units.Time(next()%50_000 + 1)
			size := units.Size(raw%30_000) + 1
			flow := packet.FlowID(next()%2 + 1)
			submitAt := at
			r.eng.At(submitAt, func() { r.host.SubmitMessage(flow, size) })
		}
		r.eng.Run(at + 100*units.Millisecond)
		last := map[packet.FlowID]units.Time{}
		for _, p := range r.gen {
			if prev, ok := last[p.Flow]; ok && p.Deadline <= prev {
				return false
			}
			last[p.Flow] = p.Deadline
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
