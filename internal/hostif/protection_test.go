package hostif

import (
	"testing"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/units"
)

// The guarantee-protection plane at the NIC: behavioural fault windows
// (rogue traffic multiplication, deadline forgery) and the ingress
// policer that demotes the resulting excess to best effort.

func policedFlow(id packet.FlowID, bw units.Bandwidth) *Flow {
	f := bwFlow(id, packet.Multimedia, bw)
	f.Policed = true
	return f
}

func TestRogueWindowMultipliesPolicedTraffic(t *testing.T) {
	r := newHostRig(t, arch.Simple2VC, 0)
	r.host.AddFlow(policedFlow(1, 1))
	unpoliced := bwFlow(2, packet.Multimedia, 1)
	r.host.AddFlow(unpoliced)

	r.host.SetRogue(2.5)
	r.eng.At(0, func() {
		for i := 0; i < 4; i++ {
			r.host.SubmitMessage(1, 100)
		}
		r.host.SubmitMessage(2, 100)
	})
	r.eng.Run(units.Millisecond)

	var policed, plain int
	for _, p := range r.gen {
		switch p.Flow {
		case 1:
			policed++
		case 2:
			plain++
		}
	}
	// 4 messages at factor 2.5: the fractional accumulator yields exactly
	// 10 copies (2+3+2+3), one packet each.
	if policed != 10 {
		t.Fatalf("policed flow emitted %d packets under 2.5x rogue window, want 10", policed)
	}
	if plain != 1 {
		t.Fatalf("unpoliced flow emitted %d packets, want 1 (rogue windows only hit admitted flows)", plain)
	}

	// Closing the window restores one-for-one emission.
	r.gen = nil
	r.host.SetRogue(0)
	r.eng.At(r.eng.Now()+1, func() { r.host.SubmitMessage(1, 100) })
	r.eng.Run(2 * units.Millisecond)
	if len(r.gen) != 1 {
		t.Fatalf("after the window closed: %d packets, want 1", len(r.gen))
	}
}

func TestForgeWindowTightensByBandwidthDeadlines(t *testing.T) {
	// Two identical policed flows, one submitting inside a forge window:
	// its stamped deadline must be exactly the scaled increment, and a
	// FrameLatency flow must be untouched (the forgery rule is only
	// defined for ByBandwidth stamping).
	r := newHostRig(t, arch.Simple2VC, 0)
	r.host.AddFlow(policedFlow(1, 0.5)) // 1008 wire bytes -> +2016 cycles
	frame := &Flow{ID: 2, Class: packet.Multimedia, Src: 0, Dst: 1, Route: []int{0},
		Mode: FrameLatency, Target: 4000, Policed: true}
	r.host.AddFlow(frame)

	r.host.SetForge(0.5)
	r.eng.At(0, func() {
		r.host.SubmitMessage(1, 1000)
		r.host.SubmitMessage(2, 1000)
	})
	r.eng.Run(units.Millisecond)

	var byBW, byFrame *packet.Packet
	for _, p := range r.gen {
		switch p.Flow {
		case 1:
			byBW = p
		case 2:
			byFrame = p
		}
	}
	if byBW == nil || byFrame == nil {
		t.Fatalf("missing generated packets: %v", r.gen)
	}
	if byBW.Deadline != 1008 {
		t.Fatalf("forged ByBandwidth deadline = %v, want 1008 (half of 2016)", byBW.Deadline)
	}
	if byFrame.Deadline != 4000 {
		t.Fatalf("FrameLatency deadline = %v, want 4000 (forge must not apply)", byFrame.Deadline)
	}
}

func TestPolicerDemotesExcessAndCatchesForgery(t *testing.T) {
	// A policed flow over-submitting against a tight burst: conformant
	// packets keep their regulated VC, the excess is demoted to best
	// effort, and the Policed hook sees every demotion. With a forge
	// window open the demotions are flagged as forgery — the stamped
	// deadline is tighter than the reservation's envelope.
	var demoted, forged int
	r := newHostRig(t, arch.Simple2VC, 0)
	r.host.cfg.Police = true
	r.host.cfg.PoliceBurst = 2 * units.Kilobyte
	r.host.cfg.Hooks.Policed = func(p *packet.Packet, now units.Time, f bool) {
		demoted++
		if f {
			forged++
		}
	}
	r.host.AddFlow(policedFlow(1, 0.01)) // far below the submission rate

	r.eng.At(0, func() {
		for i := 0; i < 8; i++ {
			r.host.SubmitMessage(1, 1000)
		}
	})
	r.eng.Run(units.Millisecond)

	var reg, be int
	for _, p := range r.gen {
		if p.VC == packet.VCBestEffort {
			be++
		} else {
			reg++
		}
	}
	if reg == 0 || be == 0 {
		t.Fatalf("want a conformant prefix and a demoted tail, got regulated=%d besteffort=%d", reg, be)
	}
	if be != demoted {
		t.Fatalf("Policed hook fired %d times for %d demoted packets", demoted, be)
	}
	if forged != 0 {
		t.Fatalf("%d rate-excess demotions flagged as forgery", forged)
	}

	// Same overload inside a forge window: the tightened stamps fail the
	// envelope comparison and every demotion is a forgery verdict.
	demoted, forged = 0, 0
	r.gen = nil
	r.host.SetForge(0.25)
	r.eng.At(r.eng.Now()+1, func() {
		for i := 0; i < 8; i++ {
			r.host.SubmitMessage(1, 1000)
		}
	})
	r.eng.Run(2 * units.Millisecond)
	if demoted == 0 || forged != demoted {
		t.Fatalf("forge window: %d demoted, %d forged; want all demotions flagged", demoted, forged)
	}
}
