// Package hostif models the end-host network interface, where all the
// per-flow intelligence of the paper's architecture lives (§3, §3.1):
//
//   - Per-flow records hold the parameters needed to stamp deadlines; the
//     switches never see them.
//   - Deadline calculus: for most flows D(Pi) = max(D(Pi-1), Tnow) +
//     L(Pi)/BWavg (a Virtual Clock). Control flows use the link bandwidth
//     as BWavg (maximum priority); multimedia flows spread a configured
//     target frame latency over the frame's packets: D(Pi) =
//     max(D(Pi-1), Tnow) + target/Parts(F).
//   - Eligible time: optionally a packet may not enter the network before
//     deadline − lead (20 µs in the paper), smoothing multimedia bursts.
//   - Injection queues (§3.2): in the regulated VC an eligible-time queue
//     feeds a deadline-ordered ready queue; the best-effort VC is also
//     deadline-ordered. Best-effort injects only when the regulated VC has
//     nothing ready. Under the Traditional architectures the NIC instead
//     keeps one FIFO per VC and injects packets as soon as possible.
//
// The receive side models a NIC that drains at line rate: packets are
// delivered to the application immediately and credits return to the
// upstream switch at once.
package hostif

import (
	"fmt"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/link"
	"deadlineqos/internal/metrics"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/police"
	"deadlineqos/internal/policy"
	"deadlineqos/internal/pqueue"
	"deadlineqos/internal/sim"
	"deadlineqos/internal/trace"
	"deadlineqos/internal/units"
)

// Metrics bundles the host-level instruments of the metrics plane. The
// per-class slack histograms observe each delivery's remaining
// time-to-deadline (negative = missed), the per-class miss counters count
// deliveries past deadline. The zero value disables recording; every
// instrument method is nil-safe.
type Metrics struct {
	Generated *metrics.Counter
	Injected  *metrics.Counter
	Delivered *metrics.Counter
	Missed    [packet.NumClasses]*metrics.Counter
	Slack     [packet.NumClasses]*metrics.Histogram
}

// DeadlineMode selects how a flow computes packet deadlines (§3.1).
type DeadlineMode uint8

// Deadline computation modes.
const (
	// ByBandwidth: D += L/BWavg, the Virtual Clock rule. Control flows
	// use the link bandwidth as BWavg.
	ByBandwidth DeadlineMode = iota
	// FrameLatency: D += targetLatency/Parts(F), giving every application
	// frame the same latency budget regardless of its size.
	FrameLatency
	// Absolute: every packet carries the flow's AbsDeadline verbatim — the
	// coflow-level EDF rule, where all packets of a collective round share
	// the round's completion deadline regardless of emission time. The
	// deadline is interpreted against this host's local clock (the TTD
	// header transports it skew-tolerantly from there, §3.3).
	Absolute
)

// Flow is a per-flow record kept at the sending host.
type Flow struct {
	ID       packet.FlowID
	Class    packet.Class
	Src, Dst int
	Route    []int // fixed route: output port per switch hop

	Mode   DeadlineMode
	BW     units.Bandwidth // ByBandwidth: the reserved average bandwidth
	Target units.Time      // FrameLatency: desired per-frame latency
	// AbsDeadline is the shared deadline stamped in Absolute mode, against
	// this host's local clock. The coflow manager rewrites it (and Mode)
	// per collective round before submitting.
	AbsDeadline units.Time
	// Value is the flow's value density (worth per payload byte) used by
	// value-aware dropping policies; zero means worthless under eviction.
	// Stamped onto packets in exact milli-units (see packet.Value).
	Value float64
	// UseEligible delays injection until deadline − the host's lead time.
	UseEligible bool
	// Policed marks an admitted flow whose reservation the
	// guarantee-protection plane enforces at NIC ingress (when the host's
	// Config.Police is on): the sustained rate of the dual token bucket is
	// BW. The deadline-forgery test applies only in ByBandwidth mode,
	// where a conforming stamp equals the legal envelope exactly; the
	// other modes stamp legally tighter deadlines by design and get the
	// rate test alone. The flag also scopes behavioural fault windows
	// (SetRogue / SetForge): only admitted traffic misbehaves.
	Policed bool

	lastDeadline units.Time
	seq          uint64
	pol          *police.Policer
}

// IDSource hands out simulation-unique packet and frame identifiers. The
// network layer gives every host its own instance over a disjoint id range
// (see NewIDSource), so id assignment is independent of cross-host event
// interleaving and identical between sequential and sharded runs.
type IDSource struct {
	pkt, frame uint64
}

// NewIDSource returns an IDSource whose packet and frame counters both
// start just above base. Callers space bases far enough apart (the network
// uses (host+1)<<40) that ranges never collide.
func NewIDSource(base uint64) *IDSource {
	return &IDSource{pkt: base, frame: base}
}

// NextPacket returns a fresh packet id.
func (s *IDSource) NextPacket() uint64 { s.pkt++; return s.pkt }

// NextFrame returns a fresh frame id.
func (s *IDSource) NextFrame() uint64 { s.frame++; return s.frame }

// Hooks are the instrumentation callbacks a Host reports to (wired to the
// stats collector). Any may be nil.
type Hooks struct {
	Generated func(p *packet.Packet)
	Injected  func(p *packet.Packet, now units.Time)
	Delivered func(p *packet.Packet, now units.Time)
	// Corrupted observes copies dropped by this host's CRC check.
	Corrupted func(p *packet.Packet, now units.Time)
	// DupDropped observes duplicate copies dropped by this host.
	DupDropped func(p *packet.Packet, now units.Time)
	// Retransmitted observes retransmit copies queued at the source.
	Retransmitted func(p *packet.Packet, now units.Time)
	// Demoted observes packets demoted to the best-effort VC.
	Demoted func(p *packet.Packet, now units.Time)
	// Policed observes packets the ingress policer demoted to best effort
	// for violating their flow's reservation; forged marks
	// deadline-forgery verdicts (vs plain rate excess).
	Policed func(p *packet.Packet, now units.Time, forged bool)
	// Evicted observes packets a bounded injection queue discarded before
	// injection (value-drop policies). Such packets were Generated but
	// never enter the network.
	Evicted func(p *packet.Packet, now units.Time)
}

// Config parameterises one host NIC.
type Config struct {
	Eng   *sim.Engine
	Clock packet.Clock
	ID    int
	Arch  arch.Arch
	// MTU is the maximum wire size of one packet, header included
	// (2 KB in the paper's multimedia example).
	MTU units.Size
	// EligibleLead is the deadline-minus-eligible-time gap (20 µs in the
	// paper). Zero disables eligible-time shaping globally.
	EligibleLead units.Time
	IDs          *IDSource
	Hooks        Hooks
	// Reliability configures the end-to-end retransmission layer (see
	// reliability.go); the zero value disables it.
	Reliability Reliability
	// SendAck delivers an out-of-band receiver report to the source host
	// of a flow: ok acknowledges delivery of (flow, seq), !ok requests a
	// retransmission. dst is the reporting host (this one), which the
	// network uses to key the report's ordering channel. Wired by the
	// network when reliability is enabled; the transport (and its delay)
	// is the caller's.
	SendAck func(src, dst int, flow packet.FlowID, seq uint64, ok bool)
	// Tracer records lifecycle events of sampled packets (nil = tracing
	// off; every event site guards on the pointer and the packet's
	// Sampled bit, so the disabled cost is one comparison).
	Tracer *trace.Tracer
	// Metrics holds the host's metric instruments; the zero value
	// disables recording.
	Metrics Metrics
	// Policy selects the scheduling policy (injection-queue discipline and
	// ready-VC selection). Nil means policy.Default, the seed behaviour.
	Policy policy.Policy
	// Police enables ingress policing of flows marked Policed: packets
	// violating the flow's token-bucket envelope are demoted to the
	// best-effort VC before staging. PoliceBurst is the burst tolerance in
	// bytes (police.DefaultBurst when zero).
	Police      bool
	PoliceBurst units.Size
}

// Host is one end host: traffic sources submit application messages to it,
// and it injects deadline-stamped packets into the network.
type Host struct {
	cfg     Config
	pol     policy.Policy
	out     *link.Link                // toward the leaf switch
	canSend func(*packet.Packet) bool // h.out.CanSend, bound once at connect

	flows map[packet.FlowID]*Flow

	// Regulated-VC staging: packets waiting for their eligible time,
	// ordered by eligible time.
	elig eligHeap
	// Ready queues, one per VC: deadline-ordered for EDF architectures,
	// FIFO for Traditional.
	ready [packet.NumVCs]pqueue.Buffer

	wake   sim.Handle // pending eligibility wake-up
	wakeAt units.Time // oracle time the pending wake-up fires

	upstream link.CreditReturner // credit-return path of the receive-side link

	received uint64

	// Reliability layer (nil when disabled): sender-side retransmission
	// tracker, receive-side sequence trackers, and counters.
	rel    *relState
	rx     map[packet.FlowID]*rxFlow
	relCnt RelCounters

	// onCtl receives delivered in-band control payloads (SetCtlHandler).
	onCtl func(p *packet.Packet)

	// Behavioural fault windows (faults.RogueFlow / faults.DeadlineForge):
	// while rogue > 1 every message on a policed flow is multiplied by
	// rogue (fractional part carried in rogueAcc); while 0 < forge < 1 the
	// ByBandwidth deadline increment of policed flows is scaled by forge.
	rogue    float64
	rogueAcc float64
	forge    float64
}

// New returns a host NIC. Connect it with ConnectOut before submitting.
func New(cfg Config) *Host {
	if cfg.Reliability.Enabled {
		cfg.Reliability = cfg.Reliability.WithDefaults()
	}
	h := &Host{cfg: cfg, pol: cfg.Policy, flows: make(map[packet.FlowID]*Flow)}
	if h.pol == nil {
		h.pol = policy.Default()
	}
	for vc := 0; vc < packet.NumVCs; vc++ {
		h.ready[vc] = h.pol.NewHostQueue(cfg.Arch, packet.VC(vc))
		if ev, ok := h.ready[vc].(pqueue.Evictor); ok {
			ev.SetOnEvict(h.onEvict)
		}
	}
	if cfg.Reliability.Enabled {
		h.rel = &relState{entries: make(map[relKey]*relEntry)}
		h.rx = make(map[packet.FlowID]*rxFlow)
	}
	return h
}

// ID returns the host index.
func (h *Host) ID() int { return h.cfg.ID }

// ConnectOut wires the injection link and hooks its readiness callback.
func (h *Host) ConnectOut(l *link.Link) {
	h.out = l
	h.canSend = func(p *packet.Packet) bool { return l.CanSend(p) }
	l.OnReady = func() { h.tryInject() }
}

// AddFlow registers a flow record. It panics on duplicate ids or a flow
// not originating here, which indicate setup bugs.
func (h *Host) AddFlow(f *Flow) {
	if f.Src != h.cfg.ID {
		panic(fmt.Sprintf("hostif: flow %d src %d registered at host %d", f.ID, f.Src, h.cfg.ID))
	}
	if _, dup := h.flows[f.ID]; dup {
		panic(fmt.Sprintf("hostif: duplicate flow id %d", f.ID))
	}
	h.flows[f.ID] = f
}

// Flow returns the registered flow record for id, or nil.
func (h *Host) Flow(id packet.FlowID) *Flow { return h.flows[id] }

// SubmitMessage is called by a traffic source when the application emits a
// message (a control message, a video frame, a best-effort burst unit) of
// the given payload size on the given flow. The NIC segments it into MTU
// packets, stamps deadlines and eligible times, and stages them for
// injection.
func (h *Host) SubmitMessage(flowID packet.FlowID, payload units.Size) {
	f := h.flows[flowID]
	if f == nil {
		panic(fmt.Sprintf("hostif: submit on unknown flow %d", flowID))
	}
	if payload <= 0 {
		panic(fmt.Sprintf("hostif: non-positive message size %v", payload))
	}
	now := h.cfg.Clock.Now()

	maxPayload := h.cfg.MTU - packet.HeaderSize
	parts := int((payload + maxPayload - 1) / maxPayload)

	// A rogue window (faults.RogueFlow) multiplies the host's admitted
	// traffic: each submitted message is emitted rogue times in total,
	// the fractional part carried across messages so the long-run excess
	// factor is exact. Only policed (admitted) flows misbehave — the
	// point is to overdrive a reservation, not background traffic.
	copies := 1
	if h.rogue > 1 && f.Policed {
		h.rogueAcc += h.rogue - 1
		for h.rogueAcc >= 1 {
			h.rogueAcc--
			copies++
		}
	}
	for c := 0; c < copies; c++ {
		frameID := h.cfg.IDs.NextFrame()
		remaining := payload
		for i := 0; i < parts; i++ {
			chunk := maxPayload
			if remaining < chunk {
				chunk = remaining
			}
			remaining -= chunk
			h.emit(f, chunk, frameID, parts, nil, now)
		}
	}
	h.tryInject()
}

// SubmitCtl submits an in-band control-plane message: a single packet on
// the given flow whose header rides the normal data path (deadline
// calculus, VC mapping, injection queues, reliability) and whose opaque
// payload ctl is handed to the destination host's control handler (see
// SetCtlHandler) on delivery. The message must fit one packet — control
// messages are small by design (the paper's §3.1 gives Control traffic
// maximum priority precisely because it is short).
func (h *Host) SubmitCtl(flowID packet.FlowID, payload units.Size, ctl any) {
	f := h.flows[flowID]
	if f == nil {
		panic(fmt.Sprintf("hostif: submit on unknown flow %d", flowID))
	}
	if ctl == nil {
		panic("hostif: nil control payload")
	}
	if payload <= 0 || payload > h.cfg.MTU-packet.HeaderSize {
		panic(fmt.Sprintf("hostif: control payload %v does not fit one packet (MTU %v)",
			payload, h.cfg.MTU))
	}
	h.emit(f, payload, h.cfg.IDs.NextFrame(), 1, ctl, h.cfg.Clock.Now())
	h.tryInject()
}

// SetCtlHandler registers the callback that receives delivered in-band
// control payloads (packets submitted with SubmitCtl). The handler runs at
// event time on this host's engine, after the normal delivery accounting.
func (h *Host) SetCtlHandler(fn func(p *packet.Packet)) { h.onCtl = fn }

// emit stamps one packet of a message — deadline calculus (§3.1),
// eligible time, tracing, generation hook — and stages it for injection.
// ctl, when non-nil, rides the packet as an in-band control payload.
// Callers follow up with tryInject.
func (h *Host) emit(f *Flow, chunk units.Size, frameID uint64, parts int, ctl any, now units.Time) {
	p := &packet.Packet{
		ID:         h.cfg.IDs.NextPacket(),
		Flow:       f.ID,
		Class:      f.Class,
		VC:         h.cfg.Arch.VCFor(f.Class),
		Src:        f.Src,
		Dst:        f.Dst,
		Size:       chunk + packet.HeaderSize,
		Seq:        f.seq,
		Route:      f.Route,
		CreatedAt:  h.cfg.Eng.Now(),
		FrameID:    frameID,
		FrameParts: parts,
		Ctl:        ctl,
	}
	f.seq++

	// Deadline calculus (§3.1).
	base := f.lastDeadline
	if now > base {
		base = now
	}
	// A rogue window also resets the flow's virtual clock: the chaining
	// base max(lastDeadline, now) is what encodes "this flow already
	// consumed its rate", and a babbling host discards it, stamping
	// every message as freshly urgent. The stamps stay individually
	// well-formed, so only the policer's own envelope replay — whose TAT
	// never resets — can tell the excess from honest traffic.
	if h.rogue > 1 && f.Policed {
		base = now
	}
	switch f.Mode {
	case ByBandwidth:
		inc := f.BW.TxTime(p.Size)
		// A forge window (faults.DeadlineForge) tightens the ByBandwidth
		// increment below what the reservation permits — claiming urgency
		// the flow did not pay for. The rule is only defined for
		// ByBandwidth stamping, so the other modes are unaffected.
		if h.forge > 0 && h.forge < 1 && f.Policed {
			inc = units.Time(float64(inc) * h.forge)
			if inc < 1 {
				inc = 1
			}
		}
		p.Deadline = base + inc
	case FrameLatency:
		p.Deadline = base + f.Target/units.Time(parts)
	case Absolute:
		p.Deadline = f.AbsDeadline
	default:
		panic("hostif: unknown deadline mode")
	}
	f.lastDeadline = p.Deadline

	// Ingress policing (guarantee-protection plane): replay the flow's
	// legal envelope and demote violating packets to best effort before
	// staging. Only ByBandwidth stamps are checked for forgery — a
	// conforming stamp there equals the envelope exactly — while
	// FrameLatency and Absolute flows stamp legally tighter deadlines by
	// design and face the rate test alone.
	verdict := police.Conform
	if h.cfg.Police && f.Policed {
		if f.pol == nil {
			f.pol = police.New(f.BW, h.cfg.PoliceBurst)
		}
		dl := p.Deadline
		if f.Mode != ByBandwidth {
			dl = units.Infinity
		}
		if verdict = f.pol.Check(now, p.Size, dl); verdict != police.Conform {
			p.VC = packet.VCBestEffort
		}
	}

	if f.Value != 0 {
		// Exact milli-unit density × wire bytes; both factors are fixed at
		// flow setup, so the product is shard-independent.
		p.Value = int64(f.Value*1000+0.5) * int64(p.Size)
	}

	// A rogue window models a babbling NIC: besides multiplying its
	// traffic the host stops honouring the eligibility shaper on the
	// flows it overdrives — the stamps still chain legally, but packets
	// blast into the fabric as fast as credits allow. Without this the
	// shaper itself would meter the excess and a rogue could only ever
	// hurt its own flows.
	if f.UseEligible && h.cfg.EligibleLead > 0 && !(h.rogue > 1 && f.Policed) {
		p.Eligible = p.Deadline - h.cfg.EligibleLead
	}

	if tr := h.cfg.Tracer; tr != nil {
		p.Sampled = tr.SampleID(p.ID)
		if p.Sampled {
			h.traceEvt(trace.KindGenerated, p)
			if verdict != police.Conform {
				h.traceEvt(trace.KindPoliced, p)
			}
		}
	}
	if h.cfg.Hooks.Generated != nil {
		h.cfg.Hooks.Generated(p)
	}
	if verdict != police.Conform && h.cfg.Hooks.Policed != nil {
		h.cfg.Hooks.Policed(p, now, verdict == police.Forged)
	}
	h.cfg.Metrics.Generated.Inc()
	h.stage(p, now)
}

// stage places a freshly stamped packet into the eligibility or ready
// queue. The Traditional architecture ignores eligible times (they are
// part of the paper's proposal, not of PCI AS).
func (h *Host) stage(p *packet.Packet, localNow units.Time) {
	if h.cfg.Arch.DeadlineAware() && p.Eligible > localNow {
		if h.cfg.Tracer != nil && p.Sampled {
			h.traceEvt(trace.KindEligibleHold, p)
		}
		h.elig.push(p)
		h.armWake()
		return
	}
	h.ready[p.VC].Push(p)
}

// armWake schedules the next eligibility promotion event, replacing any
// later pending wake-up when a newly staged packet becomes eligible first.
func (h *Host) armWake() {
	next := h.elig.minEligible()
	if next == units.Infinity {
		return
	}
	// Translate the local eligible time to the oracle clock the engine
	// runs on.
	at := next - h.cfg.Clock.Skew
	if at < h.cfg.Eng.Now() {
		at = h.cfg.Eng.Now()
	}
	if h.wake.Pending() {
		if h.wakeAt <= at {
			return
		}
		h.cfg.Eng.Cancel(h.wake)
	}
	h.wakeAt = at
	h.wake = h.cfg.Eng.At(at, func() { h.tryInject() })
}

// promoteEligible moves packets whose eligible time has come into their
// ready queue.
func (h *Host) promoteEligible() {
	now := h.cfg.Clock.Now()
	for {
		p := h.elig.peek()
		if p == nil || p.Eligible > now {
			break
		}
		h.elig.pop()
		h.ready[p.VC].Push(p)
	}
	if h.elig.len() > 0 && !h.wake.Pending() {
		h.armWake()
	}
}

// tryInject transmits the next packet if the link permits. Which ready VC
// goes next is the policy's PickInject decision; the default policy is the
// paper's rule (§3.2): the regulated ready queue first, best-effort only
// when the regulated VC has no transmittable packet (packets still waiting
// for eligibility do not block best-effort), and under Traditional the
// FIFO heads of both VCs offered in VC order (regulated classes first,
// matching a typical AS host adapter configuration).
func (h *Host) tryInject() {
	if h.out == nil {
		return
	}
	h.promoteEligible()
	for h.out.Idle() {
		vc := h.pol.PickInject(&h.ready, h.canSend)
		if vc < 0 {
			return
		}
		p := h.ready[vc].Pop()
		p.InjectedAt = h.cfg.Eng.Now()
		if h.cfg.Tracer != nil && p.Sampled {
			h.traceEvt(trace.KindInjected, p)
		}
		if h.cfg.Hooks.Injected != nil {
			h.cfg.Hooks.Injected(p, p.InjectedAt)
		}
		h.cfg.Metrics.Injected.Inc()
		if h.rel != nil {
			h.trackInjected(p)
		}
		// TTD is stamped as of the moment the last byte leaves the
		// NIC (see link.TxTime), keeping reconstructed deadlines free
		// of size-dependent inflation.
		p.PackTTD(h.cfg.Clock.Now() + h.out.TxTime(p))
		h.out.Send(p)
	}
}

// onEvict accounts a packet a bounded ready queue discarded: the packet
// was Generated but never injected, so the conservation invariant needs
// the dedicated eviction term (faults.Conservation.EvictedAtNIC). Fires
// synchronously from inside a ready-queue Push.
func (h *Host) onEvict(p *packet.Packet) {
	if h.cfg.Tracer != nil && p.Sampled {
		h.traceEvt(trace.KindNICEvict, p)
	}
	if h.cfg.Hooks.Evicted != nil {
		h.cfg.Hooks.Evicted(p, h.cfg.Eng.Now())
	}
}

// Receive implements link.Receiver for the host's downlink: the NIC drains
// at line rate, so credits return immediately in every case — a corrupted
// or duplicate copy occupied the buffer just like a good one. Corrupted
// copies fail the end-to-end CRC check and are dropped (with a NAK when
// the reliability layer runs); duplicates are dropped and re-acknowledged;
// everything else is delivered to the application at once. The upstream
// link is identified per call via SetUpstream.
func (h *Host) Receive(p *packet.Packet) {
	p.UnpackTTD(h.cfg.Clock.Now())
	if h.upstream != nil {
		h.upstream.ReturnCredits(p.VC, p.Size)
	}
	now := h.cfg.Eng.Now()
	if p.Corrupted {
		h.relCnt.RxCorrupt++
		if h.cfg.Tracer != nil && p.Sampled {
			h.traceEvt(trace.KindCRCDrop, p)
		}
		if h.cfg.Hooks.Corrupted != nil {
			h.cfg.Hooks.Corrupted(p, now)
		}
		if h.rel != nil {
			h.sendReport(p, p.Seq, false)
			h.rxFlowOf(p.Flow).naked[p.Seq] = struct{}{}
		}
		return
	}
	if h.rel != nil {
		rx := h.rxFlowOf(p.Flow)
		if rx.seen(p.Seq) {
			h.relCnt.RxDup++
			if h.cfg.Tracer != nil && p.Sampled {
				h.traceEvt(trace.KindDupDrop, p)
			}
			if h.cfg.Hooks.DupDropped != nil {
				h.cfg.Hooks.DupDropped(p, now)
			}
			// Re-acknowledge: the original ack may have raced a timeout.
			h.sendReport(p, p.Seq, true)
			return
		}
		rx.mark(p.Seq)
		// The network delivers each flow in order, so sequence numbers
		// missing below this arrival were lost upstream: NAK them once.
		for _, s := range rx.gaps(p.Seq) {
			h.sendReport(p, s, false)
		}
	}
	h.received++
	h.cfg.Metrics.Delivered.Inc()
	// Delivery slack against this host's clock: Deadline was reconstructed
	// from the TTD header at arrival, so slack == TTD; negative is a miss.
	slack := p.Deadline - h.cfg.Clock.Now()
	h.cfg.Metrics.Slack[p.Class].Observe(int64(slack))
	if slack < 0 {
		h.cfg.Metrics.Missed[p.Class].Inc()
	}
	if h.cfg.Tracer != nil && p.Sampled {
		// Slack here is the delivery slack: Deadline was reconstructed
		// against this host's clock at arrival, so Deadline − now == TTD.
		h.traceEvt(trace.KindDelivered, p)
	}
	if h.cfg.Hooks.Delivered != nil {
		h.cfg.Hooks.Delivered(p, now)
	}
	if h.rel != nil {
		h.sendReport(p, p.Seq, true)
	}
	// In-band control payloads dispatch last, after delivery accounting:
	// the handler may submit new packets (a CAC grant, a reply), and those
	// must observe this delivery as already counted. The reliability
	// layer's duplicate check above guarantees at-most-once dispatch even
	// when the control packet itself was retransmitted.
	if p.Ctl != nil && h.onCtl != nil {
		h.onCtl(p)
	}
}

// traceEvt records one lifecycle event for a sampled packet. Callers must
// guard with h.cfg.Tracer != nil && p.Sampled so the disabled path stays
// free of the Event construction below.
func (h *Host) traceEvt(kind trace.Kind, p *packet.Packet) {
	h.cfg.Tracer.Record(trace.Event{
		T: h.cfg.Eng.Now(), Kind: kind, Pkt: p.ID, Flow: p.Flow,
		Class: p.Class, VC: p.VC, Seq: p.Seq, Src: p.Src, Dst: p.Dst,
		Node: h.cfg.ID, Port: -1, Out: -1, Hop: p.Hop,
		Slack: p.Deadline - h.cfg.Clock.Now(), Size: p.Size,
	})
}

// sendReport emits an out-of-band ack/nak toward p's source host.
func (h *Host) sendReport(p *packet.Packet, seq uint64, ok bool) {
	if h.cfg.SendAck != nil {
		h.cfg.SendAck(p.Src, h.cfg.ID, p.Flow, seq, ok)
	}
}

// SetRogue enters (factor > 1) or leaves (factor <= 1) a rogue-flow
// window: while set, every message submitted on a policed flow is emitted
// factor times in total, overdriving the host's reservations by that
// factor. Wired by the network from faults.RogueFlow events; runs on this
// host's shard.
func (h *Host) SetRogue(factor float64) {
	h.rogue = factor
	if factor <= 1 {
		h.rogueAcc = 0
	}
}

// SetForge enters (0 < scale < 1) or leaves (scale <= 0 or >= 1) a
// deadline-forge window: while set, ByBandwidth deadline increments of
// policed flows are scaled by scale, stamping tighter deadlines than the
// BWavg rule permits. Wired from faults.DeadlineForge events.
func (h *Host) SetForge(scale float64) { h.forge = scale }

// SetUpstream registers the credit-return path of the link feeding the
// host's receive side (the link itself, or a parsim cross-shard portal).
func (h *Host) SetUpstream(cr link.CreditReturner) { h.upstream = cr }

// Pending returns the number of packets staged in the NIC (both queues),
// for drain checks and diagnostics.
func (h *Host) Pending() int {
	n := h.elig.len()
	for _, q := range h.ready {
		n += q.Len()
	}
	return n
}

// Received returns the number of packets delivered to this host.
func (h *Host) Received() uint64 { return h.received }

// --- eligibility heap ----------------------------------------------------

// eligHeap orders staged packets by eligible time (ties by packet id, for
// determinism).
type eligHeap struct {
	items []*packet.Packet
}

func (e *eligHeap) len() int { return len(e.items) }

func (e *eligHeap) less(i, j int) bool {
	a, b := e.items[i], e.items[j]
	if a.Eligible != b.Eligible {
		return a.Eligible < b.Eligible
	}
	return a.ID < b.ID
}

func (e *eligHeap) push(p *packet.Packet) {
	e.items = append(e.items, p)
	i := len(e.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.items[i], e.items[parent] = e.items[parent], e.items[i]
		i = parent
	}
}

func (e *eligHeap) peek() *packet.Packet {
	if len(e.items) == 0 {
		return nil
	}
	return e.items[0]
}

func (e *eligHeap) minEligible() units.Time {
	if len(e.items) == 0 {
		return units.Infinity
	}
	return e.items[0].Eligible
}

func (e *eligHeap) pop() *packet.Packet {
	n := len(e.items)
	if n == 0 {
		return nil
	}
	top := e.items[0]
	e.items[0] = e.items[n-1]
	e.items[n-1] = nil
	e.items = e.items[:n-1]
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && e.less(l, small) {
			small = l
		}
		if r < n && e.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		e.items[i], e.items[small] = e.items[small], e.items[i]
		i = small
	}
	return top
}
