// Package police implements deterministic per-flow traffic policing at
// NIC ingress: the guarantee-protection plane that makes the paper's
// deadline promises robust against misbehaving endpoints.
//
// The paper's admission control (§3) hands every regulated flow a
// reserved average bandwidth BWavg, and the NIC stamps deadlines with the
// Virtual Clock recurrence D(Pi) = max(D(Pi-1), Tnow) + L(Pi)/BWavg. That
// recurrence is exactly the theoretical arrival time (TAT) update of a
// GCRA token bucket with sustained rate BWavg: a conforming flow's stamped
// deadline never runs more than one burst ahead of real time. The policer
// exploits the identity in both directions:
//
//   - Rate conformance: the flow's legal deadline envelope is replayed
//     packet by packet (max(TAT, now) + L/BWavg). When the envelope runs
//     more than the burst tolerance τ ahead of real time, the flow is
//     injecting beyond its reservation and the packet is non-conformant —
//     the dual token bucket's sustained test.
//   - Deadline forgery: a packet stamped with a deadline earlier than the
//     envelope's legal value claims more urgency than BWavg permits. A
//     conforming NIC's stamp equals the envelope exactly (same integer
//     recurrence, same rounding), so any earlier stamp is a forgery with
//     zero false positives.
//
// Non-conformant packets are demoted to the best-effort VC rather than
// dropped — they still inject, deliver and settle the conservation books;
// they just lose the regulated VC's priority, so a rogue host can only
// hurt itself. Crucially the TAT does not advance for demoted packets:
// demoted traffic spends no regulated budget, so the flow's conforming
// share is preserved through the misbehaviour window.
//
// Everything is integer arithmetic in units.Time on state local to one
// NIC, so policing decisions are byte-identical at any shard count.
package police

import (
	"fmt"

	"deadlineqos/internal/units"
)

// DefaultBurst is the burst tolerance used when a Config leaves Burst
// zero: generous enough to pass an entire video frame burst stamped at
// the reservation rate, tight enough that a sustained 2x overload trips
// within a few burst times.
const DefaultBurst = 32 * units.Kilobyte

// Verdict classifies one packet against its flow's envelope.
type Verdict uint8

const (
	// Conform: the packet fits the flow's token-bucket envelope; it keeps
	// its regulated VC and the envelope advances.
	Conform Verdict = iota
	// RateExceeded: the flow's envelope has run more than the burst
	// tolerance ahead of real time — the host is injecting beyond its
	// reserved BWavg. The packet is demoted and the envelope does not
	// advance.
	RateExceeded
	// Forged: the packet's stamped deadline is earlier than the envelope
	// permits — the host claims more urgency than its reservation buys.
	// The packet is demoted and the envelope does not advance.
	Forged
)

// String names the verdict for reports and tests.
func (v Verdict) String() string {
	switch v {
	case Conform:
		return "conform"
	case RateExceeded:
		return "rate-exceeded"
	case Forged:
		return "forged"
	default:
		return fmt.Sprintf("Verdict(%d)", uint8(v))
	}
}

// Policer is the per-flow dual token bucket. One Policer guards exactly
// one admitted flow at its source NIC; it is not safe for concurrent use
// (the owning NIC lives on one shard).
type Policer struct {
	rate units.Bandwidth // sustained rate = the flow's reserved BWavg
	tau  units.Time      // burst tolerance: serialisation time of Burst bytes
	tat  units.Time      // theoretical arrival time (the legal deadline envelope)
}

// New builds a policer for a flow reserved at rate, tolerating bursts of
// burst bytes (DefaultBurst when <= 0). A non-positive rate yields a nil
// policer: unreserved flows are not policed, and every method is nil-safe.
func New(rate units.Bandwidth, burst units.Size) *Policer {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = DefaultBurst
	}
	return &Policer{rate: rate, tau: rate.TxTime(burst)}
}

// Check classifies a packet of the given size, stamped with deadline and
// presented at now, against the flow's envelope, advancing the envelope
// only for conforming packets. Nil-safe: a nil policer conforms always.
func (p *Policer) Check(now units.Time, size units.Size, deadline units.Time) Verdict {
	if p == nil {
		return Conform
	}
	legal := p.tat
	if now > legal {
		legal = now
	}
	legal += p.rate.TxTime(size)
	if deadline < legal {
		return Forged
	}
	if legal-now > p.tau {
		return RateExceeded
	}
	p.tat = legal
	return Conform
}

// Envelope returns the current theoretical arrival time — the earliest
// legal deadline the next conforming packet could carry. Zero for a nil
// policer.
func (p *Policer) Envelope() units.Time {
	if p == nil {
		return 0
	}
	return p.tat
}

// Tau returns the burst tolerance in cycles (zero for a nil policer).
func (p *Policer) Tau() units.Time {
	if p == nil {
		return 0
	}
	return p.tau
}
