package police

import (
	"testing"

	"deadlineqos/internal/units"
)

// lcg is the tiny deterministic generator the property tests draw from
// (same idiom as pqueue's drop-queue oracle tests).
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r) >> 11
}

func (r *lcg) intn(n int64) int64 { return int64(r.next() % uint64(n)) }

// TestPolicerEnvelopeProperty is the token-bucket envelope property: over
// ANY window of the admitted (conforming) sub-stream, the admitted bytes
// never exceed rate * (window + tau). The admitted stream is cross-checked
// against a naive prefix-sum oracle over every (i, j) window pair.
func TestPolicerEnvelopeProperty(t *testing.T) {
	for _, seed := range []lcg{1, 7, 42, 1001} {
		rng := seed
		rate := units.Bandwidth(0.001 + float64(rng.intn(500))/1000) // up to ~0.5 B/cycle
		burst := units.Size(1+rng.intn(64)) * units.Kilobyte
		p := New(rate, burst)

		type adm struct {
			at    units.Time
			bytes units.Size
		}
		var admitted []adm
		now := units.Time(0)
		demoted := 0
		const packets = 2000
		for i := 0; i < packets; i++ {
			// Arrival process alternates idle gaps with dense bursts so the
			// stream wanders across, into and out of conformance.
			switch rng.intn(4) {
			case 0:
				now += units.Time(rng.intn(int64(rate.TxTime(16 * units.Kilobyte))))
			default:
				now += units.Time(rng.intn(200))
			}
			size := units.Size(64 + rng.intn(4096))
			// A quarter of the stream stamps deadlines below the legal
			// envelope (forgeries); the rest stamps far enough out that only
			// the rate test decides.
			deadline := now + rate.TxTime(size) + p.Envelope() + 1<<40
			if rng.intn(4) == 0 {
				deadline = now
			}
			switch p.Check(now, size, deadline) {
			case Conform:
				admitted = append(admitted, adm{at: now, bytes: size})
			default:
				demoted++
			}
		}
		if len(admitted) == 0 || demoted == 0 {
			t.Fatalf("seed %d: degenerate stream (admitted=%d demoted=%d)", seed, len(admitted), demoted)
		}

		// Naive prefix-sum oracle: admitted bytes over every closed window
		// [a_i, a_j] must fit the sustained envelope plus one burst.
		prefix := make([]int64, len(admitted)+1)
		for i, a := range admitted {
			prefix[i+1] = prefix[i] + int64(a.bytes)
		}
		tau := p.Tau()
		for i := 0; i < len(admitted); i++ {
			for j := i; j < len(admitted); j++ {
				bytes := prefix[j+1] - prefix[i]
				bound := float64(rate) * float64(admitted[j].at-admitted[i].at+tau)
				if float64(bytes) > bound+1e-6 {
					t.Fatalf("seed %d: window [%d,%d] admits %d bytes over %v, envelope allows %.1f",
						seed, i, j, bytes, admitted[j].at-admitted[i].at, bound)
				}
			}
		}
	}
}

// TestPolicerConformingStreamNeverDemoted pins the zero-false-positive
// guarantee: a stream stamped with the NIC's exact deadline recurrence at
// the reserved rate — including idle gaps and frame-sized bursts inside
// the burst tolerance — is never demoted.
func TestPolicerConformingStreamNeverDemoted(t *testing.T) {
	rate := units.MBpsToBandwidth(3) // the paper's MPEG-4 stream rate
	burst := 32 * units.Kilobyte
	p := New(rate, burst)
	rng := lcg(9)
	now := units.Time(0)
	last := units.Time(0) // the NIC's D(Pi-1)
	for i := 0; i < 5000; i++ {
		if rng.intn(20) == 0 {
			now += units.Time(rng.intn(int64(2 * units.Millisecond))) // idle gap
		}
		// A frame burst: several MTU packets stamped back to back, total
		// size within the burst tolerance.
		frame := units.Size(4+rng.intn(20)) * units.Kilobyte
		for frame > 0 {
			size := min(frame, 2*units.Kilobyte)
			frame -= size
			base := last
			if now > base {
				base = now
			}
			deadline := base + rate.TxTime(size)
			last = deadline
			if v := p.Check(now, size, deadline); v != Conform {
				t.Fatalf("packet %d at %v (deadline %v): verdict %v on a conforming stream", i, now, deadline, v)
			}
		}
		// The next frame arrives one frame period later, so the envelope
		// drains back to real time.
		now = last
	}
}

// TestPolicerDetectsForgery pins the forgery test: a host that tightens
// its deadline increments below L/BWavg is caught on every forged stamp,
// and the envelope never advances for forged packets.
func TestPolicerDetectsForgery(t *testing.T) {
	rate := units.Bandwidth(0.1)
	p := New(rate, 8*units.Kilobyte)
	now := units.Time(0)
	last := units.Time(0)
	size := units.Size(1024)
	forged := 0
	for i := 0; i < 200; i++ {
		base := last
		if now > base {
			base = now
		}
		// The forger halves the legal increment — strictly tighter stamps.
		deadline := base + rate.TxTime(size)/2
		last = deadline
		env := p.Envelope()
		if v := p.Check(now, size, deadline); v == Forged {
			forged++
			if p.Envelope() != env {
				t.Fatal("envelope advanced for a forged packet")
			}
		}
		now += rate.TxTime(size) // rate-conforming arrivals: only forgery trips
	}
	if forged == 0 {
		t.Fatal("no forgeries detected on a tightened-deadline stream")
	}
}

// TestPolicerRogueDemotionShare pins the sustained-rate test: a host
// injecting at 4x its reservation keeps roughly its reserved share
// conforming and has the excess demoted.
func TestPolicerRogueDemotionShare(t *testing.T) {
	rate := units.Bandwidth(0.25)
	p := New(rate, 4*units.Kilobyte)
	size := units.Size(1024)
	step := rate.TxTime(size) / 4 // 4x the reserved rate
	now := units.Time(0)
	conform, demoted := 0, 0
	for i := 0; i < 4000; i++ {
		// The rogue still stamps legally (its NIC recurrence is honest, it
		// just sends too often), so only the rate bucket decides.
		deadline := p.Envelope()
		if now > deadline {
			deadline = now
		}
		deadline += rate.TxTime(size)
		if p.Check(now, size, deadline) == Conform {
			conform++
		} else {
			demoted++
		}
		now += step
	}
	share := float64(conform) / float64(conform+demoted)
	if share < 0.2 || share > 0.35 {
		t.Fatalf("conforming share %.3f, want ~0.25 (the reserved fraction of a 4x overload)", share)
	}
}

// TestPolicerNilSafe pins the unreserved-flow contract: a nil policer
// conforms everything.
func TestPolicerNilSafe(t *testing.T) {
	var p *Policer
	if p != New(0, 0) {
		t.Fatal("zero-rate policer must be nil")
	}
	if v := p.Check(10, 1024, 0); v != Conform {
		t.Fatalf("nil policer verdict %v, want conform", v)
	}
	if p.Envelope() != 0 || p.Tau() != 0 {
		t.Fatal("nil policer accessors must return zero")
	}
}
