package packet

import (
	"testing"
	"testing/quick"

	"deadlineqos/internal/units"
)

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		Control:    "Control",
		Multimedia: "Multimedia",
		BestEffort: "Best-effort",
		Background: "Background",
		Class(9):   "Class(9)",
	}
	for c, s := range want {
		if got := c.String(); got != s {
			t.Errorf("%d.String() = %q, want %q", c, got, s)
		}
	}
}

func TestRegulatedClasses(t *testing.T) {
	if !Control.Regulated() || !Multimedia.Regulated() {
		t.Error("Control and Multimedia must be regulated")
	}
	if BestEffort.Regulated() || Background.Regulated() {
		t.Error("Best-effort and Background must not be regulated")
	}
}

func TestVCOf(t *testing.T) {
	if VCOf(Control) != VCRegulated || VCOf(Multimedia) != VCRegulated {
		t.Error("regulated classes must map to VCRegulated")
	}
	if VCOf(BestEffort) != VCBestEffort || VCOf(Background) != VCBestEffort {
		t.Error("best-effort classes must map to VCBestEffort")
	}
	if VCRegulated.String() == VCBestEffort.String() {
		t.Error("VC names must differ")
	}
}

func TestRouteTraversal(t *testing.T) {
	p := &Packet{ID: 1, Route: []int{3, 7, 1}}
	var ports []int
	for i := 0; i < 3; i++ {
		ports = append(ports, p.NextPort())
		p.Advance()
	}
	if ports[0] != 3 || ports[1] != 7 || ports[2] != 1 {
		t.Fatalf("route traversal = %v, want [3 7 1]", ports)
	}
}

func TestRouteExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted route did not panic")
		}
	}()
	p := &Packet{Route: []int{1}, Hop: 1}
	p.NextPort()
}

func TestTTDRoundTripNoSkew(t *testing.T) {
	p := &Packet{Deadline: 5000}
	p.PackTTD(1200) // leaves sender at local time 1200
	if p.TTD != 3800 {
		t.Fatalf("TTD = %v, want 3800", p.TTD)
	}
	p.UnpackTTD(1210) // arrives 10 cycles later, same clock domain
	if p.Deadline != 5010 {
		t.Fatalf("reconstructed deadline = %v, want 5010", p.Deadline)
	}
	if p.CRCRedone != 1 {
		t.Fatalf("CRCRedone = %d, want 1", p.CRCRedone)
	}
}

func TestTTDAbsorbsClockSkew(t *testing.T) {
	// The receiving node's clock is 500 cycles ahead; the reconstructed
	// deadline must be expressed in the receiver's time base with the
	// same remaining slack.
	p := &Packet{Deadline: 5000}
	senderNow := units.Time(1000)
	p.PackTTD(senderNow) // 4000 cycles of slack remain
	receiverNow := units.Time(1010 + 500)
	p.UnpackTTD(receiverNow)
	slack := p.Deadline - receiverNow
	if slack != 4000 {
		t.Fatalf("slack after skewed hop = %v, want 4000", slack)
	}
}

func TestTTDNegativeSlack(t *testing.T) {
	// A packet past its deadline must keep a negative TTD, not wrap.
	p := &Packet{Deadline: 100}
	p.PackTTD(250)
	if p.TTD != -150 {
		t.Fatalf("TTD = %v, want -150", p.TTD)
	}
	p.UnpackTTD(300)
	if p.Deadline != 150 {
		t.Fatalf("deadline = %v, want 150", p.Deadline)
	}
}

func TestTTDSlackInvariant(t *testing.T) {
	// Property (§3.3): across any chain of hops with arbitrary per-node
	// skews, the slack reconstructed at arrival equals the slack at
	// departure — node clock skew cancels out entirely. (Time spent on
	// the wire does NOT decrement slack: the paper's scheme stamps TTD at
	// departure and reconstructs at arrival, so each hop inflates the
	// absolute deadline by the wire latency. The paper accepts this
	// because base latency in these networks is negligible against
	// deadlines; with zero dwell time the end-to-end slack is unchanged.)
	prop := func(slack0 int32, hops []int8, skews []int8) bool {
		p := &Packet{}
		base := units.Time(10_000_000)
		skew := func(i int) units.Time {
			if len(skews) == 0 {
				return 0
			}
			return units.Time(skews[i%len(skews)]) * 100
		}
		now := base
		local := now + skew(0)
		p.Deadline = local + units.Time(slack0)
		for i, h := range hops {
			hop := units.Time(uint8(h)) + 1 // 1..256 cycles per hop
			p.PackTTD(now + skew(i))
			now += hop
			p.UnpackTTD(now + skew(i+1))
		}
		gotSlack := p.Deadline - (now + skew(len(hops)))
		return gotSlack == units.Time(slack0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestClockSkew(t *testing.T) {
	base := units.Time(1000)
	c := &Clock{Base: func() units.Time { return base }, Skew: -30}
	if got := c.Now(); got != 970 {
		t.Fatalf("skewed clock Now() = %v, want 970", got)
	}
	base = 2000
	if got := c.Now(); got != 1970 {
		t.Fatalf("skewed clock Now() = %v, want 1970", got)
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{ID: 7, Flow: 3, Class: Control, Src: 1, Dst: 2, Size: 128, Deadline: 99, Seq: 5}
	s := p.String()
	if s == "" {
		t.Fatal("empty String()")
	}
	for _, want := range []string{"id=7", "flow=3", "Control", "1->2", "seq=5"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
