// Package packet defines the unit of transfer in the simulated network:
// packets, their QoS header fields, and the traffic classes of the paper's
// workload (Table 1).
//
// Following the paper's architecture (§3), a packet carries exactly one QoS
// tag in its header — the deadline — plus fixed source routing information.
// Switches keep no per-flow state: everything a scheduler may inspect lives
// in the Packet header fields. The eligible time is used only inside the
// sending host and is not part of the wire header.
//
// Because end-host clocks are not synchronised, the deadline is not
// transmitted directly. When a packet leaves a node the header carries the
// time-to-deadline TTD = D − Tlocal; the next hop reconstructs a deadline
// against its own clock (§3.3). PackTTD and UnpackTTD implement this and
// count the per-hop header CRC recomputations the mechanism costs.
package packet

import (
	"fmt"

	"deadlineqos/internal/units"
)

// Class identifies one of the four workload traffic classes of Table 1.
type Class uint8

// The four traffic classes injected by every host (Table 1), each reserving
// 25% of the host's injection bandwidth in the paper's evaluation.
const (
	Control    Class = iota // small latency-critical control messages
	Multimedia              // MPEG-4 video streams, frame-based deadlines
	BestEffort              // self-similar internet-like traffic, higher weight
	Background              // self-similar internet-like traffic, lower weight
	NumClasses = 4
)

var classNames = [NumClasses]string{"Control", "Multimedia", "Best-effort", "Background"}

// String returns the class name as used in the paper's figures.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Regulated reports whether the class travels in the regulated VC, i.e. its
// bandwidth is reserved through admission control and it has absolute
// priority over best-effort traffic (§3.2).
func (c Class) Regulated() bool { return c == Control || c == Multimedia }

// VC identifies a virtual channel. The paper's proposals use two (VC 0
// regulated with absolute priority, VC 1 best-effort); the Traditional
// 4 VCs comparison architecture maps each traffic class to its own VC —
// the "many more VCs" alternative the paper's conclusion discusses. NumVCs
// is the maximum any architecture uses; architectures using fewer simply
// leave the higher VCs idle.
type VC uint8

// The two virtual channels of the paper's proposals.
const (
	VCRegulated  VC = 0
	VCBestEffort VC = 1
	NumVCs          = 4
)

// String names the VC.
func (v VC) String() string {
	switch v {
	case VCRegulated:
		return "VC-regulated"
	case VCBestEffort:
		return "VC-besteffort"
	default:
		return fmt.Sprintf("VC%d", uint8(v))
	}
}

// VCOf is the paper's two-VC class mapping: regulated classes share VC 0,
// best-effort classes share VC 1. Architectures may use a different
// mapping (see arch.VCFor); the mapping chosen at the source host travels
// in the packet header's VC field.
func VCOf(c Class) VC {
	if c.Regulated() {
		return VCRegulated
	}
	return VCBestEffort
}

// FlowID identifies a flow (a single connection with a fixed route and
// reserved parameters, §3).
type FlowID uint32

// HeaderSize is the wire overhead per packet: route pointer, deadline TTD
// field and header CRC, sized after the PCI AS unicast header.
const HeaderSize units.Size = 8

// Packet is one network-level packet. Fields are grouped into wire header
// fields (visible to switches), host-only fields, and instrumentation kept
// by the simulator's omniscient observer for statistics — the latter would
// not exist in hardware.
type Packet struct {
	// Wire header fields.
	ID       uint64     // unique packet id (simulator-wide)
	Flow     FlowID     // flow label
	Class    Class      // traffic class
	VC       VC         // virtual channel, assigned at the source host
	Src, Dst int        // endpoint indices
	Size     units.Size // total wire size, header included
	Seq      uint64     // per-flow sequence number, for delivery-order checks
	Deadline units.Time // cycle by which the packet should reach Dst (local clock)
	TTD      units.Time // time-to-deadline, valid only while in flight on a link
	Route    []int      // fixed source route: output port to take at hop i
	Hop      int        // current hop index into Route
	// Corrupted marks a payload CRC mismatch accumulated in flight (set
	// by the fault model's bit-error process). Switches forward corrupted
	// packets untouched — only the destination NIC's end-to-end CRC check
	// detects and drops them.
	Corrupted bool
	// Ctl is an opaque in-band control-plane payload (session
	// setup/teardown signalling, internal/session). It stands for the
	// message body a real control packet would carry: switches and links
	// never inspect it, and the destination NIC hands it to its control
	// handler after the normal delivery path. Never mutated once the
	// packet is created, so retransmit copies may share it.
	Ctl any

	// Host-only fields (not transmitted, §3.1).
	Eligible units.Time // earliest cycle the packet may enter the network
	// Value is the packet's worth to the application (flow value density ×
	// wire size, in milli-units so it stays an exact integer). Bounded
	// best-effort queues use it to decide what to shed under overload
	// (pqueue.DropQueue); it never influences flow-controlled scheduling.
	Value int64

	// Instrumentation (oracle time base, excluded from any scheduling).
	CreatedAt  units.Time // when the application generated the packet
	InjectedAt units.Time // when the first byte entered the network
	FrameID    uint64     // application frame/message this packet belongs to (0 = none)
	FrameParts int        // Parts(F): packets in that frame
	CRCRedone  int        // header CRC recomputations caused by TTD updates
	// Sampled marks the packet as selected for lifecycle tracing. It is
	// decided once at generation (internal/trace sampling hash) and rides
	// along so every hop can test it with a single bool load; retransmit
	// copies inherit it by struct copy.
	Sampled bool
}

// String renders a compact single-line description for traces and tests.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt{id=%d flow=%d %s %d->%d size=%v dl=%v seq=%d}",
		p.ID, p.Flow, p.Class, p.Src, p.Dst, p.Size, p.Deadline, p.Seq)
}

// NextPort returns the output port to take at the current hop. It panics if
// the route is exhausted, which indicates a topology/routing bug.
func (p *Packet) NextPort() int {
	if p.Hop >= len(p.Route) {
		panic(fmt.Sprintf("packet %d: route exhausted at hop %d (route %v)", p.ID, p.Hop, p.Route))
	}
	return p.Route[p.Hop]
}

// Advance moves the route pointer past the current hop. Like the per-hop
// route pointer update in PCI AS source routing, this mutates a header
// field, so the header CRC must be recomputed anyway — which is the paper's
// argument for why the TTD rewrite adds no extra per-hop cost.
func (p *Packet) Advance() { p.Hop++ }

// PackTTD converts the node-local deadline into the in-flight TTD header
// field: TTD = D − Tlocal at the moment the packet leaves the node (§3.3).
func (p *Packet) PackTTD(localNow units.Time) {
	p.TTD = p.Deadline - localNow
}

// UnpackTTD reconstructs a deadline against the receiving node's clock:
// D = TTD + Tlocal. The header CRC covers the TTD field, so each rewrite
// is counted as one CRC recomputation.
func (p *Packet) UnpackTTD(localNow units.Time) {
	p.Deadline = p.TTD + localNow
	p.CRCRedone++
}

// Clock is a node-local clock. Each host and switch owns one; they share
// the simulation time base but may disagree by a constant skew, modelling
// unsynchronised hardware clocks. The TTD mechanism must tolerate this.
type Clock struct {
	// Base returns the global simulation time (the oracle clock).
	Base func() units.Time
	// Skew is this node's constant offset from the oracle clock.
	Skew units.Time
}

// Now returns the node-local time.
func (c *Clock) Now() units.Time { return c.Base() + c.Skew }
