package soak

import (
	"bufio"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"deadlineqos/internal/metrics"
	"deadlineqos/internal/units"
)

// TestInjectFailureDumpsFlightRecorder exercises the whole failure path
// the CI smoke test relies on: an injected audit violation must abort
// the soak with a replay recipe AND leave a valid flight-recorder dump
// behind.
func TestInjectFailureDumpsFlightRecorder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flightrec.jsonl")
	_, err := Run(Options{
		Seed: 1, Epochs: 1, WarmUp: 200 * units.Microsecond,
		Measure: 2 * units.Millisecond, Log: t.Logf,
		FlightPath:    path,
		InjectFailure: true,
	})
	if err == nil {
		t.Fatal("InjectFailure soak returned nil error")
	}
	msg := err.Error()
	for _, want := range []string{"injected invariant failure", "flight recorder window", "replay: go run ./cmd/qossoak"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("flight dump missing: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatal("flight dump is empty")
	}
	meta := sc.Text()
	if !strings.Contains(meta, `"flightrec"`) || !strings.Contains(meta, "invariant-audit-failure") {
		t.Errorf("dump meta line %q lacks flightrec marker or trip reason", meta)
	}
	events := 0
	for sc.Scan() {
		events++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Error("flight dump has a meta line but no events")
	}
}

// TestSoakMetricsAccumulateAcrossEpochs runs two metric-enabled epochs
// and checks the rotated registry still exposes the whole soak's
// counters on the scrape rendering.
func TestSoakMetricsAccumulateAcrossEpochs(t *testing.T) {
	reg := metrics.NewRegistry()
	rep, err := Run(Options{
		Seed: 1, Epochs: 2, WarmUp: 200 * units.Microsecond,
		Measure: 2 * units.Millisecond, Log: t.Logf,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) != 2 {
		t.Fatalf("got %d epochs, want 2", len(rep.Epochs))
	}
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	prom := sb.String()
	for _, name := range []string{"qos_host_delivered_total", "qos_link_tx_packets_total", "qos_session_accepted_total"} {
		if !strings.Contains(prom, name) {
			t.Errorf("scrape rendering lacks %s after a metrics-enabled soak", name)
		}
	}
	// Rotation must fold both epochs in: delivered packets on the scrape
	// must cover at least both epochs' unique deliveries.
	var total uint64
	for _, ep := range rep.Epochs {
		total += ep.Results.Conservation.DeliveredUnique
	}
	if total == 0 {
		t.Fatal("soak delivered nothing")
	}
	delivered := promCounterSum(t, prom, "qos_host_delivered_total")
	if delivered < float64(total) {
		t.Errorf("scrape shows %.0f delivered, soak delivered %d across epochs — rotation lost counts",
			delivered, total)
	}
}

// promCounterSum sums every sample of one counter family in a Prometheus
// text rendering.
func promCounterSum(t *testing.T, prom, name string) float64 {
	t.Helper()
	var sum float64
	found := false
	for _, ln := range strings.Split(prom, "\n") {
		if !strings.HasPrefix(ln, name) || strings.HasPrefix(ln, "#") {
			continue
		}
		fields := strings.Fields(ln)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", ln, err)
		}
		sum += v
		found = true
	}
	if !found {
		t.Fatalf("no samples for %s", name)
	}
	return sum
}
