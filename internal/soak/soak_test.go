package soak

import (
	"encoding/json"
	"testing"

	"deadlineqos/internal/faults"
	"deadlineqos/internal/network"
	"deadlineqos/internal/session"
)

// TestSoakSmoke runs two randomized epochs and expects every invariant to
// hold.
func TestSoakSmoke(t *testing.T) {
	rep, err := Run(Options{Seed: 1, Epochs: 2, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) != 2 {
		t.Fatalf("got %d epoch reports, want 2", len(rep.Epochs))
	}
	for _, ep := range rep.Epochs {
		if ep.Results.Conservation.DeliveredUnique == 0 {
			t.Fatalf("epoch %d delivered nothing", ep.Epoch)
		}
	}
}

// TestSoakEpochShardDeterminism pins a soak epoch to byte-identical
// results at 1, 2 and 4 shards — the property that makes the printed
// replay command trustworthy regardless of the shard count it ran under.
func TestSoakEpochShardDeterminism(t *testing.T) {
	type snap struct {
		Cons  faults.Conservation
		Trace []faults.TraceEntry
		Avail *network.Availability
		Sess  *session.Results
	}
	var base []byte
	for _, shards := range []int{1, 2, 4} {
		cfg := EpochConfig(Options{Seed: 3, Shards: shards}, 0)
		res, err := network.Run(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		b, err := json.Marshal(snap{
			Cons: res.Conservation, Trace: res.FaultTrace,
			Avail: res.Availability, Sess: res.Sessions,
		})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = b
			continue
		}
		if string(b) != string(base) {
			t.Fatalf("shards=%d diverges:\n%s\nvs sequential:\n%s", shards, b, base)
		}
	}
}

// TestSoakEpochSeedDecorrelated checks neighbouring epochs draw distinct
// fault plans (the splitmix64 finalizer actually separates the streams).
func TestSoakEpochSeedDecorrelated(t *testing.T) {
	s0, s1 := EpochSeed(1, 0), EpochSeed(1, 1)
	if s0 == s1 {
		t.Fatal("adjacent epoch seeds collide")
	}
	c0 := EpochConfig(Options{Seed: 1}, 0)
	c1 := EpochConfig(Options{Seed: 1}, 1)
	b0, _ := json.Marshal(c0.Faults.Events)
	b1, _ := json.Marshal(c1.Faults.Events)
	if string(b0) == string(b1) {
		t.Fatal("adjacent epochs drew identical fault plans")
	}
}
