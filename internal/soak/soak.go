// Package soak drives the simulator through randomized fault-and-churn
// epochs and audits hard invariants after each one.
//
// Each epoch is an independent network build-and-run whose every random
// choice derives from (master seed, epoch index): the fault plan mixes
// switch outages, port cuts, link flaps, derates and bit errors from
// faults.RandomPlan, while a dynamic session workload churns reservations
// through the CAC on top of the static traffic matrix. After the run the
// harness checks the packet-conservation books, the structural invariants
// (switch buffer pools, link credit bounds, admission ledger), and basic
// deadline-statistics sanity. A violation aborts the soak with the epoch's
// seed and an exact replay command, and because epochs are pure functions
// of their seed — at any shard count — the replay is byte-identical.
package soak

import (
	"fmt"
	"os"

	"deadlineqos/internal/coflow"
	"deadlineqos/internal/faults"
	"deadlineqos/internal/hostif"
	"deadlineqos/internal/metrics"
	"deadlineqos/internal/network"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/policy"
	"deadlineqos/internal/session"
	"deadlineqos/internal/topology"
	"deadlineqos/internal/trace"
	"deadlineqos/internal/units"
)

// Options configures a soak run. Zero values select the defaults noted on
// each field.
type Options struct {
	// Seed is the master seed; epoch e runs with EpochSeed(Seed, e).
	Seed uint64
	// Epochs is the number of epochs to run (default 4).
	Epochs int
	// FirstEpoch offsets the epoch index (for replaying a single failed
	// epoch out of a longer schedule without re-running its predecessors).
	FirstEpoch int
	// Shards is the simulation shard count (default 1).
	Shards int
	// Load is the offered load (default 0.8).
	Load float64
	// WarmUp and Measure set each epoch's windows (defaults 1 ms / 8 ms).
	WarmUp, Measure units.Time
	// SwitchFaults, Flaps and Derates size each epoch's fault plan
	// (defaults 2 / 3 / 2).
	SwitchFaults, Flaps, Derates int
	// Policy selects the scheduling policy by name (see policy.Names;
	// empty = default). Part of the replay contract: the failure recipe
	// reprints it.
	Policy string
	// Coflows attaches the ring coflow workload (σ-order admission, 4
	// rounds of 4 KB chunks starting at the end of warm-up) to every
	// epoch, on top of the static mix, churn and faults.
	Coflows bool
	// Rogues and Forges schedule that many behavioural misbehaviour
	// windows per epoch (RogueFlow / DeadlineForge on random hosts, with
	// the faults package's default factor and scale). Police arms the
	// per-flow NIC ingress policer so the soak exercises the
	// guarantee-protection plane under the same random storms. All three
	// are part of the replay contract: the failure recipe reprints them.
	Rogues, Forges int
	Police         bool
	// Log, when non-nil, receives one progress line per epoch.
	Log func(format string, args ...any)

	// Metrics, when non-nil, threads the live metrics plane through every
	// epoch's network. The registry is rotated between epochs, so
	// counters and histograms accumulate across the whole soak while each
	// epoch records into fresh per-shard sets — a live scrape (see
	// metrics.StartServer) always reflects the soak so far plus the epoch
	// in flight. Epochs also publish on the telemetry probe cadence;
	// ProbeInterval supplies it (default 100 µs with metrics on).
	Metrics       *metrics.Registry
	ProbeInterval units.Time

	// FlightPath, when non-empty, arms the flight recorder on every epoch
	// and dumps the event window to this file when an epoch trips — an
	// audit/conservation failure or the deadline-miss-burst SLO below.
	// FlightCap sizes the per-shard ring (default trace.DefaultFlightCap).
	FlightPath string
	FlightCap  int

	// MissBurstCount / MissBurstWindow forward the deadline-miss-burst
	// SLO to every epoch (see network.Config).
	MissBurstCount  int
	MissBurstWindow units.Time

	// InjectFailure makes the first epoch fail its post-run audit with a
	// synthetic violation: the CI smoke test uses it to assert the whole
	// failure path — trip, flight dump, replay recipe — end to end.
	InjectFailure bool
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Epochs <= 0 {
		o.Epochs = 4
	}
	if o.Shards == 0 {
		o.Shards = 1
	}
	if o.Load <= 0 {
		o.Load = 0.8
	}
	if o.WarmUp <= 0 {
		o.WarmUp = units.Millisecond
	}
	if o.Measure <= 0 {
		o.Measure = 8 * units.Millisecond
	}
	if o.SwitchFaults <= 0 {
		o.SwitchFaults = 2
	}
	if o.Flaps <= 0 {
		o.Flaps = 3
	}
	if o.Derates <= 0 {
		o.Derates = 2
	}
	return o
}

// EpochSeed derives the epoch's seed from the master seed with a
// splitmix64 finalizer, so neighbouring epochs share no stream structure.
func EpochSeed(master uint64, epoch int) uint64 {
	z := master + 0x9e3779b97f4a7c15*uint64(epoch+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

// EpochConfig builds the complete network configuration for one epoch: a
// 16-host folded Clos under the advanced 2-VC architecture with the
// reliability layer, runtime invariant checks, session churn, and a
// seed-derived fault plan. Exported so the determinism cross-checks can
// replay exactly what the soak loop runs.
func EpochConfig(opt Options, epoch int) network.Config {
	opt = opt.withDefaults()
	seed := EpochSeed(opt.Seed, epoch)

	cfg := network.SmallConfig()
	cfg.WarmUp = opt.WarmUp
	cfg.Measure = opt.Measure
	cfg.Load = opt.Load
	cfg.Seed = seed
	cfg.Shards = opt.Shards
	cfg.Reliability = hostif.Reliability{Enabled: true}
	cfg.CheckInvariants = true
	cfg.Sessions = &session.Config{
		InterArrival: 300 * units.Microsecond,
		HoldMean:     1500 * units.Microsecond,
	}
	// Odd epochs run the delegated control plane so the soak exercises the
	// lease/failover protocol under the same random fault storms as the
	// centralised CAC: switch outages that land on a delegate host force
	// promotions and reclaims, and the post-epoch audit checks every
	// delegate ledger plus the client liveness watchdog.
	if epoch%2 == 1 {
		cfg.Sessions.Delegation = true
		cfg.Sessions.LocalFrac = 0.5
		cfg.Sessions.CtlService = 200 * units.Nanosecond
		cfg.Sessions.CtlQueueCap = 32
	}

	if pol, err := policy.Parse(opt.Policy); err == nil {
		cfg.Policy = pol
	} else {
		// Run rejects unknown names before any epoch builds; reaching this
		// branch means the caller skipped that validation.
		panic(fmt.Sprintf("soak: bad policy %q: %v", opt.Policy, err))
	}
	if opt.Coflows {
		cfg.Coflows = &coflow.Config{StartAt: cfg.WarmUp, Rounds: 4, Chunk: 4 * units.Kilobyte}
	}
	cfg.Police = opt.Police

	horizon := cfg.WarmUp + cfg.Measure
	plan := faults.RandomPlan(seed, soakLinkIDs(cfg.Topology), horizon, faults.RandomConfig{
		Flaps:    opt.Flaps,
		MinDown:  horizon / 200,
		MaxDown:  horizon / 25,
		Derates:  opt.Derates,
		MinScale: 0.3,

		Switches:     cfg.Topology.Switches(),
		SwitchFaults: opt.SwitchFaults,
		SwitchMTTF:   horizon / 2,
		SwitchMTTR:   horizon / 20,

		Hosts:  cfg.Topology.Hosts(),
		Rogues: opt.Rogues,
		Forges: opt.Forges,
	})
	plan.DefaultBER = 1e-7
	cfg.Faults = plan
	return cfg
}

// soakLinkIDs enumerates every wired switch output link of a topology.
func soakLinkIDs(topo topology.Topology) []faults.LinkID {
	var ids []faults.LinkID
	for sw := 0; sw < topo.Switches(); sw++ {
		for p := 0; p < topo.Radix(sw); p++ {
			if topo.Peer(sw, p).ID != -1 {
				ids = append(ids, faults.LinkID{Switch: sw, Port: p})
			}
		}
	}
	return ids
}

// EpochReport is one audited epoch's outcome.
type EpochReport struct {
	Epoch   int
	Seed    uint64
	Results *network.Results
}

// Report summarises a completed soak run.
type Report struct {
	Options Options
	Epochs  []EpochReport
}

// Run executes the soak schedule. The first invariant violation aborts the
// run with an error naming the epoch, its seed and an exact single-epoch
// replay command; the partial report accompanies the error.
func Run(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	logf := opt.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &Report{Options: opt}
	if _, err := policy.Parse(opt.Policy); err != nil {
		return rep, fmt.Errorf("soak: %w", err)
	}
	for i := 0; i < opt.Epochs; i++ {
		epoch := opt.FirstEpoch + i
		cfg := EpochConfig(opt, epoch)
		// The observability plane rides on the epoch config without
		// entering EpochSeed's replay contract: metrics, probes and the
		// flight recorder never perturb the simulation, so a bare replay
		// of EpochConfig reproduces the epoch byte-identically.
		var fr *trace.FlightRecorder
		if opt.FlightPath != "" {
			fr = trace.NewFlightRecorder(opt.FlightCap)
			cfg.Flight = fr
			cfg.MissBurstCount = opt.MissBurstCount
			cfg.MissBurstWindow = opt.MissBurstWindow
		}
		if opt.Metrics != nil {
			opt.Metrics.Rotate()
			cfg.Metrics = opt.Metrics
			if cfg.ProbeInterval <= 0 {
				cfg.ProbeInterval = opt.ProbeInterval
				if cfg.ProbeInterval <= 0 {
					cfg.ProbeInterval = 100 * units.Microsecond
				}
			}
		}
		n, err := network.New(cfg)
		if err != nil {
			return rep, epochErr(opt, epoch, cfg.Seed, err)
		}
		res := n.Run()
		auditErr := Audit(n, res)
		if auditErr == nil && opt.InjectFailure && i == 0 {
			auditErr = fmt.Errorf("injected invariant failure (InjectFailure set)")
		}
		if auditErr != nil {
			if fr != nil {
				fr.Trip("invariant-audit-failure", cfg.WarmUp+cfg.Measure)
				if path, derr := dumpFlight(fr, opt.FlightPath); derr != nil {
					auditErr = fmt.Errorf("%w (flight dump failed: %v)", auditErr, derr)
				} else {
					auditErr = fmt.Errorf("%w (flight recorder window: %s)", auditErr, path)
				}
			}
			return rep, epochErr(opt, epoch, cfg.Seed, auditErr)
		}
		if tripped, reason, at := fr.Tripped(); tripped {
			// The run-time SLO (deadline-miss burst) froze the ring
			// mid-epoch; the epoch itself still passed its audits.
			if path, derr := dumpFlight(fr, opt.FlightPath); derr != nil {
				logf("epoch %d: flight recorder tripped (%s at %v) but dump failed: %v",
					epoch, reason, at, derr)
			} else {
				logf("epoch %d: flight recorder tripped (%s at %v), window dumped to %s",
					epoch, reason, at, path)
			}
		}
		rep.Epochs = append(rep.Epochs, EpochReport{Epoch: epoch, Seed: cfg.Seed, Results: res})
		av := res.Availability
		logf("epoch %d ok: seed %#016x delivered=%d dropped-in-switch=%d availability[%v]",
			epoch, cfg.Seed, res.Conservation.DeliveredUnique,
			res.Conservation.DroppedInSwitch, av)
	}
	return rep, nil
}

// dumpFlight writes the flight window to path and returns the path.
func dumpFlight(fr *trace.FlightRecorder, path string) (string, error) {
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := fr.WriteJSONL(f); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// epochErr wraps an epoch failure with its seed and replay recipe.
func epochErr(opt Options, epoch int, seed uint64, err error) error {
	extra := ""
	if opt.Policy != "" {
		extra += " -policy " + opt.Policy
	}
	if opt.Coflows {
		extra += " -coflows"
	}
	if opt.Rogues > 0 {
		extra += fmt.Sprintf(" -rogues %d", opt.Rogues)
	}
	if opt.Forges > 0 {
		extra += fmt.Sprintf(" -forges %d", opt.Forges)
	}
	if opt.Police {
		extra += " -police"
	}
	return fmt.Errorf("soak: epoch %d (seed %#016x): %w\nreplay: go run ./cmd/qossoak -seed %d -first-epoch %d -epochs 1 -shards %d%s",
		epoch, seed, err, opt.Seed, epoch, opt.Shards, extra)
}

// Audit runs every post-epoch invariant: packet conservation, structural
// network invariants (switch pools, credit bounds, admission ledger), and
// deadline-statistics sanity.
func Audit(n *network.Network, res *network.Results) error {
	if err := res.Conservation.Check(); err != nil {
		return fmt.Errorf("conservation: %w\n%v", err, res.Conservation)
	}
	if err := n.AuditInvariants(); err != nil {
		return fmt.Errorf("structural audit: %w", err)
	}
	return SanityCheck(res)
}

// SanityCheck validates the per-class deadline statistics: no class
// delivers more measured packets than it generated, latency quantiles are
// monotone, and miss rates stay in [0, 1].
func SanityCheck(res *network.Results) error {
	for c := 0; c < packet.NumClasses; c++ {
		cl := packet.Class(c)
		cs := &res.PerClass[c]
		if cs.DeliveredPackets > cs.GeneratedPackets {
			return fmt.Errorf("sanity: class %v delivered %d > generated %d",
				cl, cs.DeliveredPackets, cs.GeneratedPackets)
		}
		if cs.LatencyHist.Count() > 0 {
			p50, p99 := cs.LatencyHist.Quantile(0.50), cs.LatencyHist.Quantile(0.99)
			if p99 < p50 {
				return fmt.Errorf("sanity: class %v latency p99 %v < p50 %v", cl, p99, p50)
			}
		}
		if mr := res.MissRate(cl); mr < 0 || mr > 1 {
			return fmt.Errorf("sanity: class %v miss rate %v outside [0, 1]", cl, mr)
		}
	}
	return nil
}
