// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`). Each benchmark
// regenerates its experiment through internal/experiments at a reduced
// scale (16-host network, short windows) and reports the headline numbers
// as benchmark metrics; `go test -bench=<name> -v` additionally prints the
// full tables. The full 128-endpoint reproduction is `cmd/qostables
// -scale paper`.
//
// The raw-performance benchmarks (SimulationRate, SimulationRateTraced,
// Engine) additionally persist a machine-readable BENCH_<scenario>.json
// snapshot in the working directory, so CI and regression scripts can
// diff simulator throughput across commits without parsing `go test`
// output:
//
//	go test -bench='SimulationRate|Engine' -run '^$' .
//	cat BENCH_simrate.json
package deadlineqos

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/experiments"
	"deadlineqos/internal/harness"
	"deadlineqos/internal/metrics"
	"deadlineqos/internal/network"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/pqueue"
	"deadlineqos/internal/sim"
	"deadlineqos/internal/trace"
	"deadlineqos/internal/units"
	"deadlineqos/internal/xrand"
)

// benchResult is the BENCH_<scenario>.json schema.
type benchResult struct {
	Scenario     string  `json:"scenario"`
	N            int     `json:"n"`
	NsPerOp      float64 `json:"ns_per_op"`
	EventsPerOp  float64 `json:"events_per_op,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// MallocsPerEvent is the hot loop's allocation pressure (heap
	// allocations per executed event), the second axis the
	// perf-regression gate (cmd/qosbench) watches.
	MallocsPerEvent float64 `json:"mallocs_per_event,omitempty"`
}

// writeBenchJSON persists the benchmark's headline numbers as
// BENCH_<scenario>.json (the final timing of the last b.N round wins).
// Failures only log: a read-only working directory must not fail the
// benchmark itself.
func writeBenchJSON(b *testing.B, scenario string, events, mallocs uint64) {
	elapsed := b.Elapsed()
	if b.N == 0 || elapsed <= 0 {
		return
	}
	res := benchResult{
		Scenario: scenario,
		N:        b.N,
		NsPerOp:  float64(elapsed.Nanoseconds()) / float64(b.N),
	}
	if events > 0 {
		res.EventsPerOp = float64(events) / float64(b.N)
		res.EventsPerSec = float64(events) / elapsed.Seconds()
		res.MallocsPerEvent = float64(mallocs) / float64(events)
	}
	data, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		b.Logf("marshalling BENCH_%s.json: %v", scenario, err)
		return
	}
	if err := os.WriteFile("BENCH_"+scenario+".json", append(data, '\n'), 0o644); err != nil {
		b.Logf("writing BENCH_%s.json: %v", scenario, err)
	}
}

// benchOpt is the benchmark experiment scale: large enough to show every
// qualitative effect, small enough that one sweep fits in seconds.
func benchOpt() experiments.Options {
	o := experiments.Quick()
	o.Base.WarmUp = 500 * units.Microsecond
	o.Base.Measure = 6 * units.Millisecond
	o.Loads = []float64{0.3, 1.0}
	return o
}

// videoOpt extends the window so frame-level statistics are meaningful.
func videoOpt() experiments.Options {
	o := benchOpt()
	o.Base.Measure = 30 * units.Millisecond
	return o
}

// parsePct extracts the numeric value of strings like "+24.8%" / "99.1%".
func parsePct(s string) float64 {
	s = strings.TrimSuffix(strings.TrimPrefix(s, "+"), "%")
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

// parseF extracts a float cell.
func parseF(s string) float64 {
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

// BenchmarkTable1Mix regenerates Table 1 (the per-host traffic mix) and
// reports how closely the offered per-class bandwidth tracks the
// configured 25% shares.
func BenchmarkTable1Mix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table1(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", t)
			worst := 0.0
			for _, row := range t.Rows {
				if d := parseF(row[2]) - parseF(row[1]); d > worst || -d > worst {
					if d < 0 {
						d = -d
					}
					worst = d
				}
			}
			b.ReportMetric(worst, "worst-share-err-pct")
		}
	}
}

// BenchmarkFig2ControlLatency regenerates Figure 2 (left): Control average
// latency versus load for the four architectures. Reported metrics: the
// full-load Control latency under Traditional and Advanced — the paper's
// headline gap.
func BenchmarkFig2ControlLatency(b *testing.B) {
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		lat, _, _, err := experiments.Fig2(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", lat)
			last := lat.Rows[len(lat.Rows)-1] // full load row
			b.ReportMetric(parseF(last[1]), "trad-us")
			b.ReportMetric(parseF(last[4]), "advanced-us")
		}
	}
}

// BenchmarkFig2ControlCDF regenerates Figure 2 (right): the CDF of Control
// latency at full load, reporting the p99 under Ideal and Traditional.
func BenchmarkFig2ControlCDF(b *testing.B) {
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		_, cdf, _, err := experiments.Fig2(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", cdf)
			for _, row := range cdf.Rows {
				switch row[0] {
				case arch.Traditional2VC.String():
					b.ReportMetric(parseF(row[4]), "trad-p99-us")
				case arch.Ideal.String():
					b.ReportMetric(parseF(row[4]), "ideal-p99-us")
				}
			}
		}
	}
}

// BenchmarkFig3VideoLatency regenerates Figure 3 (left): video frame
// latency versus load. The Advanced full-load mean should sit on the 10 ms
// target.
func BenchmarkFig3VideoLatency(b *testing.B) {
	opt := videoOpt()
	for i := 0; i < b.N; i++ {
		lat, _, _, err := experiments.Fig3(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", lat)
			last := lat.Rows[len(lat.Rows)-1]
			b.ReportMetric(parseF(last[4]), "advanced-frame-ms")
		}
	}
}

// BenchmarkFig3VideoCDF regenerates Figure 3 (right): the frame latency
// CDF at full load.
func BenchmarkFig3VideoCDF(b *testing.B) {
	opt := videoOpt()
	for i := 0; i < b.N; i++ {
		_, cdf, _, err := experiments.Fig3(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", cdf)
		}
	}
}

// BenchmarkFig4Throughput regenerates Figure 4: best-effort class
// throughput versus load. Reported metrics: the full-load throughput of
// the two best-effort classes under the Advanced architecture — their gap
// is the EDF differentiation the paper highlights.
func BenchmarkFig4Throughput(b *testing.B) {
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		t, _, err := experiments.Fig4(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", t)
			last := t.Rows[len(t.Rows)-1]
			// Columns: load, then (BE, BG) per arch in opt.Archs order;
			// Advanced is the 4th architecture.
			b.ReportMetric(parseF(last[7]), "advanced-be-pct")
			b.ReportMetric(parseF(last[8]), "advanced-bg-pct")
		}
	}
}

// BenchmarkOrderErrorPenalty regenerates the §3.4 comparison: the Control
// latency penalty of the Simple and Advanced proposals relative to Ideal,
// plus raw order-error counts from the oracle.
func BenchmarkOrderErrorPenalty(b *testing.B) {
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		t, err := experiments.OrderPenalty(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", t)
			for _, row := range t.Rows {
				if row[1] != "off" {
					continue // report the shaping-off penalties (worst case)
				}
				switch row[0] {
				case arch.Simple2VC.String():
					b.ReportMetric(parsePct(row[3]), "simple-penalty-pct")
				case arch.Advanced2VC.String():
					b.ReportMetric(parsePct(row[3]), "advanced-penalty-pct")
				}
			}
		}
	}
}

// BenchmarkVideoBand regenerates the §5 claim that nearly all video frames
// land within a tight band around the target latency under EDF
// architectures.
func BenchmarkVideoBand(b *testing.B) {
	opt := videoOpt()
	for i := 0; i < b.N; i++ {
		t, err := experiments.VideoBand(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", t)
			for _, row := range t.Rows {
				if row[0] == arch.Advanced2VC.String() {
					b.ReportMetric(parsePct(row[3]), "advanced-in-band-pct")
				}
			}
		}
	}
}

// BenchmarkAblationEligibleTime regenerates ablation A1: the effect of the
// eligible-time lead on order pressure and latency.
func BenchmarkAblationEligibleTime(b *testing.B) {
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationEligibleTime(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", t)
		}
	}
}

// BenchmarkAblationBufferSize regenerates ablation A2: sensitivity to the
// per-VC buffer capacity around the paper's 8 KB.
func BenchmarkAblationBufferSize(b *testing.B) {
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationBufferSize(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", t)
		}
	}
}

// BenchmarkAblationClockSkew regenerates ablation A3: tolerance of the TTD
// mechanism to unsynchronised node clocks.
func BenchmarkAblationClockSkew(b *testing.B) {
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationClockSkew(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", t)
		}
	}
}

// BenchmarkSimulationRate measures raw simulator speed (events per second)
// on the full-load Advanced configuration — the cost metric for scaling
// experiments up.
func BenchmarkSimulationRate(b *testing.B) {
	cfg := network.SmallConfig()
	cfg.Arch = arch.Advanced2VC
	cfg.Load = 1.0
	cfg.WarmUp = 0
	cfg.Measure = 2 * units.Millisecond
	b.ResetTimer()
	var events, mallocs uint64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := network.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += res.SimEvents
		mallocs += res.Perf.Mallocs
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	writeBenchJSON(b, "simrate", events, mallocs)
}

// BenchmarkSimulationRateMetrics is BenchmarkSimulationRate with the
// always-on metrics plane recording into a live registry — diffing
// BENCH_simrate_metrics.json against BENCH_simrate.json quantifies the
// metrics overhead. (With metrics merely configured off, the per-site
// cost is one nil check; that case is BenchmarkSimulationRate itself.)
func BenchmarkSimulationRateMetrics(b *testing.B) {
	cfg := network.SmallConfig()
	cfg.Arch = arch.Advanced2VC
	cfg.Load = 1.0
	cfg.WarmUp = 0
	cfg.Measure = 2 * units.Millisecond
	b.ResetTimer()
	var events, mallocs uint64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		cfg.Metrics = metrics.NewRegistry()
		res, err := network.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += res.SimEvents
		mallocs += res.Perf.Mallocs
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	writeBenchJSON(b, "simrate_metrics", events, mallocs)
}

// BenchmarkSimulationRateTraced is BenchmarkSimulationRate with
// packet-lifecycle tracing on at a 2% sample rate — diffing the two
// BENCH_*.json files quantifies the observability overhead. (With tracing
// merely configured off, the per-event cost is one nil check; that case
// is BenchmarkSimulationRate itself.)
func BenchmarkSimulationRateTraced(b *testing.B) {
	cfg := network.SmallConfig()
	cfg.Arch = arch.Advanced2VC
	cfg.Load = 1.0
	cfg.WarmUp = 0
	cfg.Measure = 2 * units.Millisecond
	cfg.TrackOrderErrors = true
	b.ResetTimer()
	var events, mallocs uint64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		tr, err := trace.New(trace.Config{SampleRate: 0.02, Seed: cfg.Seed})
		if err != nil {
			b.Fatal(err)
		}
		cfg.Tracer = tr
		res, err := network.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += res.SimEvents
		mallocs += res.Perf.Mallocs
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	writeBenchJSON(b, "simrate_traced", events, mallocs)
}

// BenchmarkArchitectures measures one full-load run per architecture, the
// per-run cost entering every sweep above.
func BenchmarkArchitectures(b *testing.B) {
	for _, a := range arch.All() {
		b.Run(a.Flag(), func(b *testing.B) {
			cfg := network.SmallConfig()
			cfg.Arch = a
			cfg.Load = 1.0
			cfg.WarmUp = 0
			cfg.Measure = 2 * units.Millisecond
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i + 1)
				if _, err := network.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngine measures the discrete-event core: schedule+fire of one
// event including heap maintenance at a realistic pending-set size.
func BenchmarkEngine(b *testing.B) {
	eng := sim.New()
	// Pre-fill a realistic pending set.
	for i := 0; i < 4096; i++ {
		eng.At(units.Time(1e12)+units.Time(i), func() {})
	}
	n := 0
	var step func()
	step = func() {
		if n < b.N {
			n++
			eng.After(3, step)
		}
	}
	b.ResetTimer()
	eng.At(0, step)
	eng.Run(units.Time(1e11))
	b.ReportMetric(1, "events/op")
	writeBenchJSON(b, "engine", uint64(b.N), 0)
}

// BenchmarkBuffers measures push+pop through the three buffer disciplines
// under a deadline-shuffled workload — the per-packet cost that separates
// the Ideal architecture's heap from the paper's FIFO-based designs.
func BenchmarkBuffers(b *testing.B) {
	for _, d := range []pqueue.Discipline{pqueue.FIFO, pqueue.Heap, pqueue.TakeOver} {
		b.Run(d.String(), func(b *testing.B) {
			rng := xrand.New(1)
			buf := pqueue.New(d, 1<<40, false)
			pkts := make([]*packet.Packet, 64)
			dl := units.Time(0)
			for i := range pkts {
				dl += units.Time(rng.UniformInt(-5, 40)) // mostly increasing
				pkts[i] = &packet.Packet{ID: uint64(i + 1), Deadline: dl, Size: 64}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pkts[i%len(pkts)]
				p.ID = uint64(i + 1) // unique ids for the take-over map
				buf.Push(p)
				if buf.Len() >= 32 {
					buf.Pop()
				}
			}
		})
	}
}

// BenchmarkHarnessSweepParallel measures the wall-clock benefit of the
// concurrent sweep runner relative to the serial cost of its runs.
func BenchmarkHarnessSweepParallel(b *testing.B) {
	cfg := network.SmallConfig()
	cfg.WarmUp = 0
	cfg.Measure = 1 * units.Millisecond
	for i := 0; i < b.N; i++ {
		pts := harness.Sweep(cfg, arch.All(), []float64{0.5, 1.0}, 0)
		if err := harness.FirstErr(pts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotspotTolerance regenerates the hotspot extension experiment:
// half of all best-effort bursts aimed at one host must not disturb the
// regulated classes under the EDF architectures.
func BenchmarkHotspotTolerance(b *testing.B) {
	opt := benchOpt()
	opt.Archs = []arch.Arch{arch.Traditional2VC, arch.Advanced2VC}
	for i := 0; i < b.N; i++ {
		t, err := experiments.HotspotTolerance(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", t)
			// Control latency of Advanced with hotspot on: last row.
			last := t.Rows[len(t.Rows)-1]
			b.ReportMetric(parseF(last[2]), "advanced-hot-ctrl-us")
		}
	}
}

// BenchmarkVideoJitter regenerates the jitter comparison the paper omitted
// for space: EDF architectures must show far tighter video jitter than
// Traditional.
func BenchmarkVideoJitter(b *testing.B) {
	opt := videoOpt()
	for i := 0; i < b.N; i++ {
		t, err := experiments.VideoJitter(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", t)
			for _, row := range t.Rows {
				switch row[0] {
				case arch.Traditional2VC.String():
					b.ReportMetric(parseF(row[1]), "trad-jitter-us")
				case arch.Advanced2VC.String():
					b.ReportMetric(parseF(row[1]), "advanced-jitter-us")
				}
			}
		}
	}
}

// BenchmarkAblationVCTable regenerates ablation A5: no weighted-table
// setting of the Traditional architecture recovers deadline scheduling.
func BenchmarkAblationVCTable(b *testing.B) {
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationVCTable(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", t)
		}
	}
}

// BenchmarkManyVCs regenerates extension E2: a 4-VC Traditional switch
// (one weighted VC per class) against the paper's 2-VC Traditional and
// the Advanced proposal — buying QoS with silicon vs with deadlines.
func BenchmarkManyVCs(b *testing.B) {
	opt := videoOpt()
	for i := 0; i < b.N; i++ {
		t, err := experiments.ManyVCs(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", t)
			for _, row := range t.Rows {
				switch row[0] {
				case arch.Traditional4VC.String():
					b.ReportMetric(parseF(row[2]), "trad4-ctrl-us")
				case arch.Advanced2VC.String():
					b.ReportMetric(parseF(row[2]), "advanced-ctrl-us")
				}
			}
		}
	}
}

// BenchmarkAblationXbarSpeedup regenerates ablation A6: sensitivity of the
// Advanced architecture to internal crossbar speedup.
func BenchmarkAblationXbarSpeedup(b *testing.B) {
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationXbarSpeedup(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", t)
		}
	}
}

// BenchmarkCollective regenerates extension E3: ring-collective completion
// time under full Table 1 interference, Traditional vs Advanced.
func BenchmarkCollective(b *testing.B) {
	opt := benchOpt()
	opt.Archs = []arch.Arch{arch.Traditional2VC, arch.Advanced2VC}
	opt.Base.Measure = 25 * units.Millisecond
	for i := 0; i < b.N; i++ {
		t, err := experiments.CollectiveCompletion(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", t)
		}
	}
}

// parsimShardRun is one row of BENCH_parsim.json: the cost of the
// reference run at one shard count.
type parsimShardRun struct {
	Shards       int     `json:"shards"`
	N            int     `json:"n"`
	NsPerOp      float64 `json:"ns_per_op"`
	EventsPerOp  float64 `json:"events_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Speedup is sequential wall time over this run's wall time. It only
	// exceeds 1 when the host grants the shards real cores; GOMAXPROCS
	// below records what this machine offered.
	Speedup float64 `json:"speedup"`
}

// BenchmarkParsimScaling measures the sharded engine (internal/parsim) on
// the paper-scale 128-endpoint MIN at 1/2/4/8 shards and persists the
// scaling curve as BENCH_parsim.json. Results are byte-identical across
// shard counts (pinned by the experiments determinism tests); only the
// wall clock moves. Event counts differ across shard counts — a
// cross-shard hop is an event on both engines — so ns_per_op, not
// events_per_sec, is the cross-shard-count comparison axis.
func BenchmarkParsimScaling(b *testing.B) {
	base := network.DefaultConfig() // paper-scale MIN
	base.Arch = arch.Advanced2VC
	base.Load = 1.0
	base.WarmUp = 0
	base.Measure = 3 * units.Millisecond
	runs := map[int]parsimShardRun{}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := base
			cfg.Shards = shards
			var events uint64
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i + 1)
				res, err := network.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				events += res.SimEvents
			}
			b.ReportMetric(float64(events)/float64(b.N), "events/op")
			runs[shards] = parsimShardRun{
				Shards:       shards,
				N:            b.N,
				NsPerOp:      float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				EventsPerOp:  float64(events) / float64(b.N),
				EventsPerSec: float64(events) / b.Elapsed().Seconds(),
			}
		})
	}
	seq, ok := runs[1]
	if !ok || seq.NsPerOp <= 0 {
		return
	}
	out := struct {
		Scenario   string           `json:"scenario"`
		Topology   string           `json:"topology"`
		GOMAXPROCS int              `json:"gomaxprocs"`
		Runs       []parsimShardRun `json:"runs"`
	}{Scenario: "parsim", Topology: base.Topology.Name(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, shards := range []int{1, 2, 4, 8} {
		r, ok := runs[shards]
		if !ok {
			continue
		}
		r.Speedup = seq.NsPerOp / r.NsPerOp
		out.Runs = append(out.Runs, r)
	}
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		b.Logf("marshalling BENCH_parsim.json: %v", err)
		return
	}
	if err := os.WriteFile("BENCH_parsim.json", append(data, '\n'), 0o644); err != nil {
		b.Logf("writing BENCH_parsim.json: %v", err)
	}
}
