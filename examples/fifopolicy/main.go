// Fifopolicy: a custom scheduling policy implemented out of tree.
//
// The policy subsystem (DESIGN.md §14) lets a downstream user swap the
// simulator's scheduling decisions without touching internal/. This
// program defines the smallest interesting custom policy — FIFO-within-
// class — entirely against the public deadlineqos facade:
//
//   - host injection queues hold packets in arrival order instead of the
//     default deadline order (the host-side EDF sort is switched off),
//   - the NIC pick and the switch arbiters are inherited unchanged from
//     the default policy by embedding it — a custom policy overrides only
//     the decisions it cares about.
//
// On the 2-VC architectures, control and multimedia share the regulated
// VC, so the host queue is where a near-deadline control packet overtakes
// queued multimedia. Running both policies on the same saturated
// configuration isolates that sort: with FIFO staging control serves
// strictly behind earlier multimedia arrivals (its tail latency rises),
// while multimedia — which EDF deprioritises whenever control is waiting —
// misses slightly fewer deadlines. The sort is the mechanism behind the
// paper's preference ordering, and a one-method policy turns it off.
//
//	go run ./examples/fifopolicy
package main

import (
	"fmt"

	"deadlineqos"
)

// fifoWithinClass stages each host VC in arrival order. Embedding the
// default policy inherits PickInject and NewArbiter, so the data path
// downstream of the host queues is untouched — the comparison isolates
// the host-side EDF sort.
type fifoWithinClass struct {
	deadlineqos.Policy
}

func (fifoWithinClass) Name() string { return "fifo-within-class" }

func (fifoWithinClass) NewHostQueue(a deadlineqos.Arch, vc deadlineqos.VC) deadlineqos.Buffer {
	return deadlineqos.NewFIFOQueue(deadlineqos.PolicyHostQueueCap, false)
}

func run(pol deadlineqos.Policy) (*deadlineqos.Results, error) {
	cfg := deadlineqos.SmallConfig()
	cfg.Arch = deadlineqos.Advanced2VC
	cfg.Load = 1.0 // saturation: the regulated host queues actually back up
	cfg.Policy = pol
	return deadlineqos.Run(cfg)
}

func main() {
	policies := []deadlineqos.Policy{
		deadlineqos.DefaultPolicy(),
		fifoWithinClass{Policy: deadlineqos.DefaultPolicy()},
	}

	fmt.Printf("%-18s  %11s  %11s  %11s  %8s\n",
		"policy", "ctl avg", "ctl p99", "mm p99", "mm miss")
	for _, pol := range policies {
		res, err := run(pol)
		if err != nil {
			fmt.Println("run:", err)
			return
		}
		ctl := &res.PerClass[deadlineqos.Control]
		mm := &res.PerClass[deadlineqos.Multimedia]
		fmt.Printf("%-18s  %11v  %11v  %11v  %7.2f%%\n",
			res.Policy,
			deadlineqos.Time(ctl.PacketLatency.Mean()),
			ctl.LatencyHist.Quantile(0.99),
			mm.LatencyHist.Quantile(0.99),
			100*res.MissRate(deadlineqos.Multimedia))
	}

	fmt.Println("\nSame network, same arbiters, same traffic — only the host")
	fmt.Println("queues differ. FIFO staging keeps control behind earlier")
	fmt.Println("multimedia arrivals in the shared regulated VC, so control's")
	fmt.Println("tail latency rises; multimedia, no longer overtaken, misses")
	fmt.Println("slightly fewer deadlines. That trade is the host-side EDF sort.")
}
