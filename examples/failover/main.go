// Failover: degrade a spine uplink to 20% of its bandwidth and watch the
// centralised admission control (§3: bandwidth reservation at a central
// point, fixed routes) place the reserved multimedia flows around the bad
// cable, keeping video frames on their 10 ms target while unreserved
// traffic crossing the slow link pays the price.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"deadlineqos"
	"deadlineqos/internal/network"
	"deadlineqos/internal/report"
)

func main() {
	t := report.NewTable("degraded uplink (leaf 0, port 4 at 20%) under Advanced 2 VCs, 80% load",
		"scenario", "ctrl avg", "ctrl p99", "video frame avg", "video in 11ms", "BE thru")

	for _, degrade := range []bool{false, true} {
		cfg := deadlineqos.SmallConfig()
		cfg.Arch = deadlineqos.Advanced2VC
		cfg.Load = 0.8
		cfg.WarmUp = 2 * deadlineqos.Millisecond
		cfg.Measure = 30 * deadlineqos.Millisecond
		if degrade {
			// Port 4 is the first uplink of leaf 0 in the 4x4+4 Clos.
			cfg.DegradedLinks = []network.DegradedLink{{Switch: 0, Port: 4, Scale: 0.2}}
		}
		res, err := deadlineqos.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		name := "healthy"
		if degrade {
			name = "degraded"
		}
		ctrl := &res.PerClass[deadlineqos.Control]
		mm := &res.PerClass[deadlineqos.Multimedia]
		t.Add(name,
			deadlineqos.Time(ctrl.PacketLatency.Mean()).String(),
			ctrl.LatencyHist.Quantile(0.99).String(),
			deadlineqos.Time(mm.FrameLatency.Mean()).String(),
			fmt.Sprintf("%.1f%%", 100*mm.FrameHist.FractionBelow(11*deadlineqos.Millisecond)),
			fmt.Sprintf("%.1f%%", 100*res.Throughput(deadlineqos.BestEffort)))
	}
	fmt.Println(t)
	fmt.Println("Reserved video flows were admitted around the slow cable, so frame")
	fmt.Println("latency stays pinned to the target; only traffic without reservations")
	fmt.Println("(control and best-effort flows hashed onto that uplink) slows down.")
}
