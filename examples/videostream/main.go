// Videostream: demonstrate the paper's frame-latency deadline rule (§3.1).
//
// MPEG frames vary from 1 KB to 120 KB, yet with deadlines computed as
// D(Pi) = max(D(Pi-1), Tnow) + target/Parts(F) every frame completes in
// roughly the configured target latency — independent of its size — and
// jitter nearly vanishes. This program sweeps the target and prints the
// measured frame-latency distribution.
//
//	go run ./examples/videostream
package main

import (
	"fmt"
	"log"

	"deadlineqos"
)

func main() {
	for _, target := range []deadlineqos.Time{
		5 * deadlineqos.Millisecond,
		10 * deadlineqos.Millisecond, // the paper's configuration
		20 * deadlineqos.Millisecond,
	} {
		cfg := deadlineqos.SmallConfig()
		cfg.Arch = deadlineqos.Advanced2VC
		cfg.Load = 0.6
		// Multimedia-only workload to isolate the mechanism.
		cfg.ClassShare = [deadlineqos.NumClasses]float64{0, 0.6, 0, 0}
		cfg.VideoTarget = target
		cfg.WarmUp = 2 * deadlineqos.Millisecond
		cfg.Measure = 25*deadlineqos.Millisecond + 4*target

		res, err := deadlineqos.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		mm := &res.PerClass[deadlineqos.Multimedia]
		fmt.Printf("target %-8v -> frames=%-5d mean=%-9v p99=%-9v within target+10%%: %.1f%%\n",
			target, mm.FrameLatency.Count(),
			deadlineqos.Time(mm.FrameLatency.Mean()),
			mm.FrameHist.Quantile(0.99),
			100*mm.FrameHist.FractionBelow(target+target/10))
	}
	fmt.Println("\nFrame latency tracks the configured target, not the frame size:")
	fmt.Println("small and large frames alike finish within ~target, as in Figure 3.")
}
