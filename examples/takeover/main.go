// Takeover: a micro-demonstration of the paper's two-queue buffer (§3.4).
//
// Two flows share a buffer. Flow A's packets carry far deadlines, flow B's
// packets arrive later with near deadlines. A plain FIFO forces B to wait
// behind A (order errors); the take-over queue lets B overtake while — per
// the appendix theorems — never reordering the packets *within* either
// flow.
//
//	go run ./examples/takeover
package main

import (
	"fmt"

	"deadlineqos"
)

// arrival describes one packet fed to both buffers.
type arrival struct {
	flow     uint32
	seq      uint64
	deadline deadlineqos.Time
}

func main() {
	// Flow 1 first queues four packets with far deadlines (e.g. smoothed
	// multimedia); flow 2 then bursts four packets with near deadlines
	// (e.g. control). Within each flow deadlines increase, as the
	// appendix's hypotheses require.
	arrivals := []arrival{
		{1, 0, 1000}, {1, 1, 1100}, {1, 2, 1200}, {1, 3, 1300},
		{2, 0, 40}, {2, 1, 50}, {2, 2, 60}, {2, 3, 70},
	}

	run := func(name string, buf deadlineqos.Buffer) {
		var id uint64
		for _, a := range arrivals {
			id++
			buf.Push(&deadlineqos.Packet{
				ID: id, Flow: deadlineqos.FlowID(a.flow), Seq: a.seq,
				Deadline: a.deadline, Size: 64,
			})
		}
		fmt.Printf("%-10s departure order:", name)
		lastSeq := map[uint32]uint64{}
		ordered := true
		for buf.Len() > 0 {
			p := buf.Pop()
			fmt.Printf("  f%d#%d(d=%d)", p.Flow, p.Seq, p.Deadline)
			if last, ok := lastSeq[uint32(p.Flow)]; ok && p.Seq < last {
				ordered = false
			}
			lastSeq[uint32(p.Flow)] = p.Seq
		}
		fmt.Printf("\n%-10s order errors: %d, per-flow order preserved: %v\n\n",
			name, buf.OrderErrors(), ordered)
	}

	run("FIFO", deadlineqos.NewFIFOQueue(deadlineqos.Kilobyte, true))
	run("take-over", deadlineqos.NewTakeOverQueue(deadlineqos.Kilobyte, true))
	run("heap", deadlineqos.NewHeapQueue(deadlineqos.Kilobyte, true))

	fmt.Println("The take-over queue matches the heap's schedule here using only")
	fmt.Println("two FIFOs — the hardware the paper argues a high-radix switch can")
	fmt.Println("actually afford — and never reorders packets within a flow.")
}
