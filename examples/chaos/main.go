// Chaos: inject a reproducible fault storm — link flaps, mid-run bandwidth
// derating, and a 1e-6 bit-error rate on every link — into the Table 1 mix
// at 80% load, with the end-to-end reliability layer recovering (CRC drops
// at the receiver, NAKs, timeout retransmission with §3.1 deadline
// re-stamping, demotion to best-effort after repeated failures).
//
// Two things to watch:
//
//   - Graceful degradation: control p99 stays bounded and video frames keep
//     (almost) meeting their 10 ms target even though thousands of packets
//     are corrupted or lost and must be retransmitted.
//
//   - Conservation: every packet generated is delivered exactly once,
//     dropped-and-accounted, or still in flight when the run stops — the
//     books balance to the packet, faults and all.
//
// Run with: go run ./examples/chaos
package main

import (
	"fmt"
	"log"

	"deadlineqos"
	"deadlineqos/internal/topology"
)

// wiredLinks enumerates every switch output link of a topology.
func wiredLinks(topo deadlineqos.Topology) []deadlineqos.FaultLinkID {
	var ids []deadlineqos.FaultLinkID
	for sw := 0; sw < topo.Switches(); sw++ {
		for p := 0; p < topo.Radix(sw); p++ {
			if topo.Peer(sw, p).ID != -1 {
				ids = append(ids, deadlineqos.FaultLinkID{Switch: sw, Port: p})
			}
		}
	}
	return ids
}

func main() {
	topo, err := topology.NewFoldedClos(4, 4, 4) // 16 hosts
	if err != nil {
		log.Fatal(err)
	}
	cfg := deadlineqos.SmallConfig()
	cfg.Topology = topo
	cfg.Arch = deadlineqos.Advanced2VC
	cfg.Load = 0.8
	cfg.WarmUp = 2 * deadlineqos.Millisecond
	cfg.Measure = 30 * deadlineqos.Millisecond

	horizon := cfg.WarmUp + cfg.Measure
	plan := deadlineqos.RandomFaultPlan(7, wiredLinks(topo), horizon, deadlineqos.FaultRandomConfig{
		Flaps:    4,
		MinDown:  100 * deadlineqos.Microsecond,
		MaxDown:  800 * deadlineqos.Microsecond,
		Derates:  2,
		MinScale: 0.3,
	})
	plan.DefaultBER = 1e-6 // one bit error per ~125 MB on every link
	cfg.Faults = plan
	cfg.Reliability = deadlineqos.Reliability{Enabled: true}
	cfg.CheckInvariants = true

	res, err := deadlineqos.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("fault trace (replays identically for the same seeds):")
	for _, e := range res.FaultTrace {
		fmt.Printf("  %v\n", e)
	}

	ctrl := &res.PerClass[deadlineqos.Control]
	mm := &res.PerClass[deadlineqos.Multimedia]
	fmt.Printf("\ncontrol:    p99 %v (corrupt %d, retransmitted %d)\n",
		ctrl.LatencyHist.Quantile(0.99), ctrl.CorruptedPackets, ctrl.RetransmittedPackets)
	fmt.Printf("multimedia: frame p99 %v, %.1f%% of frames within 11ms of the 10ms target\n",
		mm.FrameHist.Quantile(0.99), 100*mm.FrameHist.FractionBelow(11*deadlineqos.Millisecond))
	fmt.Printf("recovery:   %d lost to flaps, %d corrupted, %d retransmitted, %d demoted\n",
		res.LostOnLink, res.Conservation.ArrivedCorrupt,
		res.Reliability.Retransmitted, res.Reliability.Demoted)

	fmt.Printf("\nconservation: %v\n", res.Conservation)
	if err := res.Conservation.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("conservation: OK — every packet delivered once, accounted, or in flight")
}
