// Clustermix: the paper's motivating scenario — one physical network
// carrying the traffic that machines like MareNostrum split across three
// separate networks (parallel-application, storage, and management
// traffic), plus background bulk transfers.
//
// The program runs the Table 1 mix at full load on a folded-Clos cluster
// network under all four switch architectures and prints the per-class
// service each delivers, demonstrating that deadline-based QoS lets a
// single network replace the over-provisioned trio.
//
//	go run ./examples/clustermix            # 64-host cluster
//	go run ./examples/clustermix -hosts 128 # the paper's full MIN (slower)
package main

import (
	"flag"
	"fmt"
	"log"

	"deadlineqos"
	"deadlineqos/internal/arch"
	"deadlineqos/internal/report"
)

func main() {
	hosts := flag.Int("hosts", 64, "cluster size: 16, 64 or 128 endpoints")
	load := flag.Float64("load", 1.0, "offered load per host")
	flag.Parse()

	var (
		topo deadlineqos.Topology
		err  error
	)
	switch *hosts {
	case 16:
		topo, err = deadlineqos.NewFoldedClos(4, 4, 4)
	case 64:
		topo, err = deadlineqos.NewFoldedClos(8, 8, 8)
	case 128:
		topo = deadlineqos.PaperMIN()
	default:
		log.Fatalf("unsupported cluster size %d (want 16, 64 or 128)", *hosts)
	}
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable(
		fmt.Sprintf("cluster of %d hosts at %.0f%% load: per-class service by architecture", *hosts, 100**load),
		"architecture", "ctrl avg", "ctrl p99", "video frame avg", "BE thru", "BG thru")
	for _, a := range arch.All() {
		cfg := deadlineqos.DefaultConfig()
		cfg.Topology = topo
		cfg.Arch = a
		cfg.Load = *load
		cfg.WarmUp = 2 * deadlineqos.Millisecond
		cfg.Measure = 25 * deadlineqos.Millisecond
		res, err := deadlineqos.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		ctrl := &res.PerClass[deadlineqos.Control]
		mm := &res.PerClass[deadlineqos.Multimedia]
		t.Add(a.String(),
			deadlineqos.Time(ctrl.PacketLatency.Mean()).String(),
			ctrl.LatencyHist.Quantile(0.99).String(),
			deadlineqos.Time(mm.FrameLatency.Mean()).String(),
			fmt.Sprintf("%.1f%%", 100*res.Throughput(deadlineqos.BestEffort)),
			fmt.Sprintf("%.1f%%", 100*res.Throughput(deadlineqos.Background)))
	}
	fmt.Println(t)
	fmt.Println("Control stays fast and video frames stay on target under the EDF")
	fmt.Println("architectures even while best-effort bulk traffic fills the links;")
	fmt.Println("a single QoS-capable network does the work of three.")
}
