// Quickstart: run the paper's mixed workload (Table 1) on a small network
// under two switch architectures and compare what QoS each class receives.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"deadlineqos"
)

func main() {
	// A 16-host folded Clos with the paper's default parameters: 8 Gb/s
	// links, 8 KB buffers per VC, the four-class 25%-each traffic mix.
	cfg := deadlineqos.SmallConfig()
	cfg.Load = 1.0 // saturate every host's injection link

	for _, a := range []deadlineqos.Arch{deadlineqos.Traditional2VC, deadlineqos.Advanced2VC} {
		cfg.Arch = a
		res, err := deadlineqos.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", a)
		fmt.Print(res.Summary())

		ctrl := &res.PerClass[deadlineqos.Control]
		fmt.Printf("Control p99 latency: %v over %d packets\n\n",
			ctrl.LatencyHist.Quantile(0.99), ctrl.DeliveredPackets)
	}
	fmt.Println("The deadline-based architecture keeps Control latency near the")
	fmt.Println("unloaded floor at full load; the traditional 2-VC switch cannot")
	fmt.Println("distinguish Control from Multimedia inside the regulated VC.")
}
