// Collective: an MPI-style ring exchange (the parallel-application traffic
// the paper's introduction motivates) sharing the network with video and
// bulk best-effort traffic.
//
// Every host sends a chunk around the ring for N-1 rounds, each round
// gated on receiving the previous one — so one slow message anywhere
// stalls the whole application. The deadline-based architectures keep the
// collective fast under full interference; the traditional switch lets
// multimedia queued in the same VC stall it.
//
// This is also the reference example of driving custom workloads through
// the library: registering extra flows, submitting from delivery
// callbacks, and observing through Config.Trace.
//
//	go run ./examples/collective
package main

import (
	"fmt"
	"log"

	"deadlineqos"
	"deadlineqos/internal/arch"
	"deadlineqos/internal/collective"
	"deadlineqos/internal/network"
	"deadlineqos/internal/report"
)

func main() {
	t := report.NewTable("ring collective (16 hosts, 8KB chunks, 15 rounds) under full load",
		"architecture", "completion", "vs idle")

	// Idle-network baseline for reference.
	idle := runOnce(deadlineqos.Advanced2VC, 0)
	if !idle.Done() {
		log.Fatal("baseline collective incomplete")
	}

	for _, a := range arch.All() {
		r := runOnce(a, 1.0)
		completion := "incomplete"
		ratio := "-"
		if r.Done() {
			completion = r.CompletionTime().String()
			ratio = fmt.Sprintf("%.1fx", float64(r.CompletionTime())/float64(idle.CompletionTime()))
		}
		t.Add(a.String(), completion, ratio)
	}
	fmt.Println(t)
	fmt.Printf("idle-network baseline: %v\n\n", idle.CompletionTime())
	fmt.Println("Deadline scheduling keeps the parallel application's critical path")
	fmt.Println("near the idle-network floor while video and bulk transfers saturate")
	fmt.Println("every link — the single-network cluster the paper argues for.")
}

// runOnce executes one collective under the given architecture and load.
func runOnce(a deadlineqos.Arch, load float64) *collective.Runner {
	cfg := deadlineqos.SmallConfig()
	cfg.Arch = a
	cfg.Load = load
	cfg.ClassShare = [deadlineqos.NumClasses]float64{0, 0.25, 0.375, 0.375}
	cfg.WarmUp = 0
	cfg.Measure = 30 * deadlineqos.Millisecond
	runner := collective.Attach(&cfg, collective.Config{
		Chunk: 8 * deadlineqos.Kilobyte, Class: deadlineqos.Control,
		StartAt: 2 * deadlineqos.Millisecond,
	})
	n, err := network.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := runner.Bind(n); err != nil {
		log.Fatal(err)
	}
	n.Run()
	return runner
}
