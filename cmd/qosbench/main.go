// Command qosbench is the perf-regression gate: it re-runs the
// simulator's raw-throughput scenarios in-process and compares the
// measured events_per_sec and mallocs_per_event against the committed
// BENCH_<scenario>.json baselines, exiting non-zero when a scenario
// regresses beyond the tolerance.
//
// The scalar scenarios mirror the Go benchmarks that write the baselines
// (BenchmarkSimulationRate and friends): the full-load Advanced
// configuration on the 16-host Clos, bare (simrate), with 2% lifecycle
// tracing (simrate_traced), and with the live metrics plane
// (simrate_metrics). The parsim scenario re-runs the paper-scale sharded
// reference and gates on ns_per_op per shard count.
//
// Throughput gating is only meaningful on a machine that resembles the
// baseline's: the gate refuses to run with GOMAXPROCS <= 1 unless
// -allow-single-cpu is given, and each scenario takes the best of -iters
// repetitions to shave scheduler noise.
//
// Examples:
//
//	qosbench                           # gate simrate scenarios, 25% tolerance
//	qosbench -max-regress 0.4 -iters 7
//	qosbench -scenarios simrate,parsim
//	qosbench -selftest-slowdown 2      # must exit non-zero (gate self-test)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/cli"
	"deadlineqos/internal/metrics"
	"deadlineqos/internal/network"
	"deadlineqos/internal/trace"
	"deadlineqos/internal/units"
)

// benchResult mirrors the BENCH_<scenario>.json schema written by the
// repository's Go benchmarks (see bench_test.go).
type benchResult struct {
	Scenario        string  `json:"scenario"`
	N               int     `json:"n"`
	NsPerOp         float64 `json:"ns_per_op"`
	EventsPerOp     float64 `json:"events_per_op"`
	EventsPerSec    float64 `json:"events_per_sec"`
	MallocsPerEvent float64 `json:"mallocs_per_event"`
}

// parsimBench mirrors BENCH_parsim.json.
type parsimBench struct {
	Scenario   string `json:"scenario"`
	Topology   string `json:"topology"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Runs       []struct {
		Shards  int     `json:"shards"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"runs"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qosbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenarios  = flag.String("scenarios", "simrate,simrate_traced,simrate_metrics", "comma-separated scenarios to gate: simrate|simrate_traced|simrate_metrics|parsim")
		baseDir    = flag.String("baseline-dir", ".", "directory holding the committed BENCH_<scenario>.json baselines")
		maxRegress = flag.Float64("max-regress", 0.25, "tolerated fractional regression (0.25 = fail below 75% of baseline throughput)")
		iters      = flag.Int("iters", 5, "measurement repetitions per scenario (best run gates)")
		slowdown   = flag.Float64("selftest-slowdown", 0, "divide the measured throughput by this factor before gating (>1 simulates a regression; the gate must then fail)")
		allowOne   = flag.Bool("allow-single-cpu", false, "run even with GOMAXPROCS <= 1 (throughput baselines are meaningless there)")
		prof       = cli.ProfileFlags()
	)
	flag.Parse()
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()

	if p := runtime.GOMAXPROCS(0); p <= 1 && !*allowOne {
		return fmt.Errorf("GOMAXPROCS=%d: single-CPU throughput is not comparable to the committed baselines (override with -allow-single-cpu)", p)
	}
	if *iters < 1 {
		*iters = 1
	}
	if *slowdown != 0 && *slowdown < 1 {
		return fmt.Errorf("-selftest-slowdown %v must be >= 1", *slowdown)
	}

	failed := 0
	for _, sc := range strings.Split(*scenarios, ",") {
		sc = strings.TrimSpace(sc)
		if sc == "" {
			continue
		}
		var err error
		if sc == "parsim" {
			err = gateParsim(*baseDir, *maxRegress, *slowdown)
		} else {
			err = gateScalar(sc, *baseDir, *maxRegress, *iters, *slowdown)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "qosbench: %s: %v\n", sc, err)
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d scenario(s) regressed", failed)
	}
	fmt.Println("qosbench: all scenarios within tolerance")
	return nil
}

// scalarConfig builds one scenario's network configuration (the same
// shape the Go benchmarks measure).
func scalarConfig(scenario string, seed uint64) (network.Config, error) {
	cfg := network.SmallConfig()
	cfg.Arch = arch.Advanced2VC
	cfg.Load = 1.0
	cfg.WarmUp = 0
	cfg.Measure = 2 * units.Millisecond
	cfg.Seed = seed
	switch scenario {
	case "simrate":
	case "simrate_traced":
		cfg.TrackOrderErrors = true
		tr, err := trace.New(trace.Config{SampleRate: 0.02, Seed: seed})
		if err != nil {
			return cfg, err
		}
		cfg.Tracer = tr
	case "simrate_metrics":
		cfg.Metrics = metrics.NewRegistry()
	default:
		return cfg, fmt.Errorf("unknown scenario (want simrate|simrate_traced|simrate_metrics|parsim)")
	}
	return cfg, nil
}

// gateScalar measures one scalar scenario and compares it to its
// baseline file.
func gateScalar(scenario, dir string, tol float64, iters int, slowdown float64) error {
	base, err := readBaseline(filepath.Join(dir, "BENCH_"+scenario+".json"))
	if err != nil {
		return err
	}
	if base.EventsPerSec <= 0 {
		return fmt.Errorf("baseline has no events_per_sec")
	}
	var bestRate, bestAllocs float64
	for i := 0; i < iters; i++ {
		cfg, err := scalarConfig(scenario, uint64(i+1))
		if err != nil {
			return err
		}
		res, err := network.Run(cfg)
		if err != nil {
			return err
		}
		pf := res.Perf
		if pf.EventsPerSec > bestRate {
			bestRate, bestAllocs = pf.EventsPerSec, pf.MallocsPerEvent
		}
	}
	if slowdown > 0 {
		bestRate /= slowdown
	}
	ratio := bestRate / base.EventsPerSec
	fmt.Printf("qosbench: %-16s %10.0f ev/s vs baseline %10.0f (%.2fx), %.3f allocs/ev vs %.3f\n",
		scenario, bestRate, base.EventsPerSec, ratio, bestAllocs, base.MallocsPerEvent)
	if ratio < 1-tol {
		return fmt.Errorf("throughput %.0f ev/s is %.1f%% of baseline %.0f (floor %.1f%%)",
			bestRate, 100*ratio, base.EventsPerSec, 100*(1-tol))
	}
	// Allocation pressure gates with the same tolerance plus a small
	// absolute slack so near-zero baselines don't trip on jitter.
	if base.MallocsPerEvent > 0 && bestAllocs > base.MallocsPerEvent*(1+tol)+0.05 {
		return fmt.Errorf("allocation pressure %.3f allocs/ev exceeds baseline %.3f by more than %.0f%%",
			bestAllocs, base.MallocsPerEvent, 100*tol)
	}
	return nil
}

// gateParsim re-runs the paper-scale sharded reference at the baseline's
// shard counts and gates on ns_per_op per row.
func gateParsim(dir string, tol float64, slowdown float64) error {
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_parsim.json"))
	if err != nil {
		return err
	}
	var base parsimBench
	if err := json.Unmarshal(raw, &base); err != nil {
		return err
	}
	if len(base.Runs) == 0 {
		return fmt.Errorf("baseline has no runs")
	}
	cfg := network.DefaultConfig()
	cfg.Arch = arch.Advanced2VC
	cfg.Load = 1.0
	cfg.WarmUp = 0
	cfg.Measure = 3 * units.Millisecond
	cfg.Seed = 1
	for _, run := range base.Runs {
		if run.NsPerOp <= 0 {
			continue
		}
		c := cfg
		c.Shards = run.Shards
		n, err := network.New(c)
		if err != nil {
			return err
		}
		res := n.Run()
		ns := float64(res.Perf.WallNs)
		if slowdown > 0 {
			ns *= slowdown
		}
		ratio := ns / run.NsPerOp
		fmt.Printf("qosbench: parsim shards=%d %12.0f ns vs baseline %12.0f (%.2fx)\n",
			run.Shards, ns, run.NsPerOp, ratio)
		if ratio > 1+tol {
			return fmt.Errorf("shards=%d wall %v is %.1f%% of baseline (ceiling %.1f%%)",
				run.Shards, units.Time(ns), 100*ratio, 100*(1+tol))
		}
	}
	return nil
}

// readBaseline loads one scalar BENCH_<scenario>.json.
func readBaseline(path string) (*benchResult, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b benchResult
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}
