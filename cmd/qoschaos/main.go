// Command qoschaos runs a fault-injection (chaos) simulation: a random but
// fully reproducible fault plan — link flaps, bandwidth derating, bit
// errors — is injected into the network while the end-to-end reliability
// layer recovers, and the run is audited against the packet-conservation
// invariant. A violated invariant exits non-zero: the command doubles as a
// robustness check in CI and scripting.
//
// Examples:
//
//	qoschaos -arch advanced -topo small -load 0.8
//	qoschaos -flaps 8 -ber 1e-6 -faultseed 3 -trace
//	qoschaos -arch traditional -noreliability
package main

import (
	"flag"
	"fmt"
	"os"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/cli"
	"deadlineqos/internal/coflow"
	"deadlineqos/internal/faults"
	"deadlineqos/internal/hostif"
	"deadlineqos/internal/network"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/policy"
	"deadlineqos/internal/report"
	"deadlineqos/internal/topology"
	"deadlineqos/internal/units"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qoschaos:", err)
		os.Exit(1)
	}
}

// linkIDs enumerates every wired switch output link of a topology.
func linkIDs(topo topology.Topology) []faults.LinkID {
	var ids []faults.LinkID
	for sw := 0; sw < topo.Switches(); sw++ {
		for p := 0; p < topo.Radix(sw); p++ {
			if topo.Peer(sw, p).ID != -1 {
				ids = append(ids, faults.LinkID{Switch: sw, Port: p})
			}
		}
	}
	return ids
}

func run() error {
	var (
		archName  = flag.String("arch", "advanced", "switch architecture: traditional|ideal|simple|advanced")
		topoSpec  = flag.String("topo", "small", "topology: paper|small|clos:L,D,U|tree:K,N|single:N")
		load      = flag.Float64("load", 0.8, "offered load per host as a fraction of link bandwidth")
		shards    = cli.ShardsFlag()
		seed      = flag.Uint64("seed", 1, "traffic random seed")
		warmup    = flag.String("warmup", "2ms", "warm-up period excluded from measurement")
		measure   = flag.String("measure", "20ms", "measurement window")
		faultSeed = flag.Uint64("faultseed", 1, "fault-plan seed (independent of the traffic seed)")
		flaps     = flag.Int("flaps", 4, "number of link down/up flap pairs to schedule")
		derates   = flag.Int("derates", 2, "number of bandwidth derate/restore pairs to schedule")
		swFaults  = flag.Int("switch-faults", 0, "number of whole-switch outage pairs to schedule")
		swMTTF    = flag.String("switch-mttf", "10ms", "mean time between switch failures")
		swMTTR    = flag.String("switch-mttr", "500us", "mean switch outage duration")
		ber       = flag.Float64("ber", 1e-6, "bit-error rate applied to every link")
		noRel     = flag.Bool("noreliability", false, "disable the end-to-end retransmission layer")
		showTrace = flag.Bool("trace", false, "print the executed fault trace")
		rogues    = flag.Int("rogues", 0, "number of RogueFlow misbehaviour windows to schedule")
		rogueFac  = flag.Float64("rogue-factor", 4, "traffic multiplier of RogueFlow windows")
		forges    = flag.Int("forges", 0, "number of DeadlineForge misbehaviour windows to schedule")
		forgeScl  = flag.Float64("forge-scale", 0.5, "deadline-tightening factor of DeadlineForge windows")
		police    = flag.Bool("police", false, "enforce per-flow token-bucket policing at NIC ingress")
		guard     = flag.String("guard", "0", "regulated-VC occupancy guard bytes per switch output (0 = off)")
		polName   = cli.PolicyFlag()
		coflows   = cli.CoflowsFlag()
	)
	prof := cli.ProfileFlags()
	flag.Parse()
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()

	a, err := arch.Parse(*archName)
	if err != nil {
		return err
	}
	topo, err := cli.ParseTopology(*topoSpec)
	if err != nil {
		return err
	}
	cfg := network.DefaultConfig()
	cfg.Arch = a
	cfg.Topology = topo
	cfg.Load = *load
	cfg.Seed = *seed
	cfg.Shards = *shards
	if cfg.WarmUp, err = cli.ParseDuration(*warmup); err != nil {
		return err
	}
	if cfg.Measure, err = cli.ParseDuration(*measure); err != nil {
		return err
	}
	if topo.Hosts() < 32 {
		cfg.ControlDests = min(cfg.ControlDests, topo.Hosts()-1)
		cfg.BEDests = min(cfg.BEDests, topo.Hosts()-1)
	}

	if cfg.Policy, err = policy.Parse(*polName); err != nil {
		return err
	}
	if *coflows {
		cfg.Coflows = &coflow.Config{StartAt: cfg.WarmUp}
	}
	cfg.Police = *police
	if cfg.GuardBytes, err = cli.ParseSize(*guard); err != nil {
		return fmt.Errorf("-guard: %w", err)
	}

	horizon := cfg.WarmUp + cfg.Measure
	rcfg := faults.RandomConfig{
		Flaps:       *flaps,
		MinDown:     horizon / 200,
		MaxDown:     horizon / 25,
		Derates:     *derates,
		MinScale:    0.3,
		Hosts:       topo.Hosts(),
		Rogues:      *rogues,
		RogueFactor: *rogueFac,
		Forges:      *forges,
		ForgeScale:  *forgeScl,
	}
	if *swFaults > 0 {
		rcfg.Switches = topo.Switches()
		rcfg.SwitchFaults = *swFaults
		if rcfg.SwitchMTTF, err = cli.ParseDuration(*swMTTF); err != nil {
			return err
		}
		if rcfg.SwitchMTTR, err = cli.ParseDuration(*swMTTR); err != nil {
			return err
		}
	}
	plan := faults.RandomPlan(*faultSeed, linkIDs(topo), horizon, rcfg)
	plan.DefaultBER = *ber
	cfg.Faults = plan
	cfg.CheckInvariants = true
	if !*noRel {
		cfg.Reliability = hostif.Reliability{Enabled: true}
	}

	fmt.Printf("topology=%s arch=%s load=%.0f%% seed=%d faultseed=%d window=[%v, %v]\n",
		topo.Name(), a, 100*cfg.Load, cfg.Seed, *faultSeed, cfg.WarmUp, horizon)
	fmt.Printf("plan: %d events, BER %.2g on all links, reliability=%v\n",
		len(plan.Events), plan.DefaultBER, !*noRel)

	res, err := network.Run(cfg)
	if err != nil {
		return err
	}

	if *showTrace {
		fmt.Println("fault trace:")
		for _, e := range res.FaultTrace {
			fmt.Printf("  %v\n", e)
		}
	}

	t := report.NewTable("per-class results under faults",
		"class", "generated", "delivered", "corrupt", "lost", "retx", "demoted",
		"avg lat", "p99 lat", "frame p99")
	for c := packet.Class(0); c < packet.NumClasses; c++ {
		cs := &res.PerClass[c]
		frame := "-"
		if cs.FrameLatency.Count() > 0 {
			frame = cs.FrameHist.Quantile(0.99).String()
		}
		t.Add(c.String(),
			fmt.Sprintf("%d", cs.GeneratedPackets),
			fmt.Sprintf("%d", cs.DeliveredPackets),
			fmt.Sprintf("%d", cs.CorruptedPackets),
			fmt.Sprintf("%d", cs.LostPackets),
			fmt.Sprintf("%d", cs.RetransmittedPackets),
			fmt.Sprintf("%d", cs.DemotedPackets),
			units.Time(cs.PacketLatency.Mean()).String(),
			cs.LatencyHist.Quantile(0.99).String(),
			frame)
	}
	fmt.Println(t)

	rel := res.Reliability
	fmt.Printf("faults: events=%d lost=%d corruptInFlight=%d\n",
		res.FaultEvents, res.LostOnLink, res.CorruptedInFlight)
	fmt.Printf("recovery: acked=%d timeouts=%d naks=%d retx=%d demoted=%d dups=%d outstandingAtStop=%d\n",
		rel.Acked, rel.Timeouts, rel.Naks, rel.Retransmitted, rel.Demoted, rel.RxDup, res.OutstandingAtStop)
	fmt.Printf("conservation: %v\n", res.Conservation)
	if res.Availability != nil {
		fmt.Printf("availability: %v\n", res.Availability)
	}

	if res.Police != nil {
		fmt.Printf("policing: %v\n", res.Police)
	}
	if err := res.Conservation.Check(); err != nil {
		return err
	}
	fmt.Println("conservation: OK")
	return nil
}
