// Command qostables regenerates the complete experiment suite — every
// table and figure of the paper's evaluation plus the DESIGN.md ablations —
// and prints them in DESIGN.md's experiment-index order. Figures 2-4 are
// built from one shared (architecture x load) sweep.
//
// Examples:
//
//	qostables -scale quick                       # the whole suite, reduced scale
//	qostables -scale paper -loads 0.3,0.6,1.0    # full 128-endpoint MIN, reduced sweep
//	qostables -only figures,penalty              # a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/cli"
	"deadlineqos/internal/coflow"
	"deadlineqos/internal/experiments"
	"deadlineqos/internal/policy"
	"deadlineqos/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qostables:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scale   = flag.String("scale", "quick", "experiment scale: quick|paper")
		par     = cli.ParFlag()
		shards  = cli.ShardsFlag()
		seed    = flag.Uint64("seed", 1, "random seed")
		loads   = flag.String("loads", "", "comma-separated loads overriding the scale's sweep")
		warmup  = flag.String("warmup", "", "override warm-up period (e.g. 2ms)")
		measure = flag.String("measure", "", "override measurement window (e.g. 25ms)")
		plots   = flag.Bool("plots", true, "print ASCII plots next to the tables")
		csvdir  = flag.String("csvdir", "", "also write every table as CSV into this directory")
		archsF  = flag.String("archs", "", "comma-separated architecture subset (traditional,traditional4,ideal,simple,advanced)")
		only    = flag.String("only", "", "comma-separated subset: table1,figures,penalty,band,eligible,buffer,skew,hotspot,vctable,speedup,jitter,manyvcs,collective,slack,churn,availability,survivable,policies,protection,gray")
		polName = cli.PolicyFlag()
		coflows = cli.CoflowsFlag()
	)
	prof := cli.ProfileFlags()
	flag.Parse()
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()

	opt, err := cli.Scale(*scale)
	if err != nil {
		return err
	}
	opt.Parallelism = *par
	opt = opt.WithShards(*shards)
	opt.Base.Seed = *seed
	if *loads != "" {
		if opt.Loads, err = cli.ParseLoads(*loads); err != nil {
			return err
		}
	}
	if *warmup != "" {
		if opt.Base.WarmUp, err = cli.ParseDuration(*warmup); err != nil {
			return err
		}
	}
	if *measure != "" {
		if opt.Base.Measure, err = cli.ParseDuration(*measure); err != nil {
			return err
		}
	}
	// -policy/-coflows ride on the shared base config, so they tilt every
	// selected experiment — useful for re-running the paper tables under an
	// alternative policy. E8 (policies) ignores them: it sweeps the whole
	// roster on its own fixed scenario.
	if opt.Base.Policy, err = policy.Parse(*polName); err != nil {
		return err
	}
	if *coflows {
		opt.Base.Coflows = &coflow.Config{StartAt: opt.Base.WarmUp}
	}
	if *archsF != "" {
		opt.Archs = opt.Archs[:0]
		for _, name := range strings.Split(*archsF, ",") {
			a, err := arch.Parse(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			opt.Archs = append(opt.Archs, a)
		}
	}

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	selected := func(name string) bool { return len(want) == 0 || want[name] }

	if *csvdir != "" {
		if err := os.MkdirAll(*csvdir, 0o755); err != nil {
			return err
		}
	}
	show := func(id, name string, start time.Time, tables []*report.Table, figPlots []*report.Plot) {
		fmt.Printf("=== %s (%s) [%.1fs] ===\n\n", id, name, time.Since(start).Seconds())
		for i, t := range tables {
			fmt.Println(t)
			if *csvdir != "" {
				path := filepath.Join(*csvdir, fmt.Sprintf("%s_%d.csv", name, i))
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "qostables: writing %s: %v\n", path, err)
				}
			}
		}
		if *plots {
			for _, p := range figPlots {
				fmt.Println(p)
			}
		}
	}

	fmt.Printf("experiment suite: scale=%s hosts=%d loads=%v window=[%v,%v] seed=%d\n\n",
		*scale, opt.Base.Topology.Hosts(), opt.Loads,
		opt.Base.WarmUp, opt.Base.WarmUp+opt.Base.Measure, *seed)

	if selected("table1") {
		start := time.Now()
		t, err := experiments.Table1(opt)
		if err != nil {
			return fmt.Errorf("T1: %w", err)
		}
		show("T1", "table1", start, []*report.Table{t}, nil)
	}
	if selected("figures") {
		start := time.Now()
		f, err := experiments.AllFigures(opt)
		if err != nil {
			return fmt.Errorf("F2-F4: %w", err)
		}
		show("F2 F3 F4", "figures", start,
			[]*report.Table{f.Fig2Latency, f.Fig2CDF, f.Fig3Latency, f.Fig3CDF, f.Fig4Throughput},
			f.Plots)
	}
	type tableExp struct {
		id, name string
		run      func(experiments.Options) (*report.Table, error)
	}
	for _, exp := range []tableExp{
		{"S1", "penalty", experiments.OrderPenalty},
		{"S2", "band", experiments.VideoBand},
		{"A1", "eligible", experiments.AblationEligibleTime},
		{"A2", "buffer", experiments.AblationBufferSize},
		{"A3", "skew", experiments.AblationClockSkew},
		{"A4", "hotspot", experiments.HotspotTolerance},
		{"A5", "vctable", experiments.AblationVCTable},
		{"A6", "speedup", experiments.AblationXbarSpeedup},
		{"E1", "jitter", experiments.VideoJitter},
		{"E2", "manyvcs", experiments.ManyVCs},
		{"E3", "collective", experiments.CollectiveCompletion},
		{"E4", "slack", experiments.DeadlineSlack},
		{"E5", "churn", experiments.Churn},
		{"E6", "availability", experiments.Availability},
		{"E7", "survivable", experiments.Survivable},
		{"E8", "policies", experiments.Policies},
		{"E9", "protection", experiments.Protection},
		{"E9b", "gray", experiments.GrayDrain},
	} {
		if !selected(exp.name) {
			continue
		}
		start := time.Now()
		t, err := exp.run(opt)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.id, err)
		}
		show(exp.id, exp.name, start, []*report.Table{t}, nil)
	}
	return nil
}
