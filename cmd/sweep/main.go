// Command sweep regenerates one of the paper's figures by sweeping input
// load across switch architectures.
//
// Examples:
//
//	sweep -figure 2 -scale quick          # Control latency + CDF, 16 hosts
//	sweep -figure 4 -scale paper          # best-effort throughput, full MIN
//	sweep -figure 3 -loads 0.5,1.0 -csv   # CSV for external plotting
package main

import (
	"flag"
	"fmt"
	"os"

	"deadlineqos/internal/cli"
	"deadlineqos/internal/experiments"
	"deadlineqos/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		figure = flag.Int("figure", 2, "paper figure to regenerate: 2 (Control), 3 (Video), 4 (best-effort)")
		scale  = flag.String("scale", "quick", "experiment scale: quick|paper")
		loads  = flag.String("loads", "", "comma-separated loads overriding the scale's sweep")
		par    = cli.ParFlag()
		shards = cli.ShardsFlag()
		seed   = flag.Uint64("seed", 1, "random seed")
		seeds  = flag.String("seeds", "", "comma-separated seed list: figure 2 reports mean±std across them")
		csv    = flag.Bool("csv", false, "emit CSV instead of tables and plots")
	)
	prof := cli.ProfileFlags()
	flag.Parse()
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()

	opt, err := cli.Scale(*scale)
	if err != nil {
		return err
	}
	opt.Parallelism = *par
	opt = opt.WithShards(*shards)
	opt.Base.Seed = *seed
	if *loads != "" {
		if opt.Loads, err = cli.ParseLoads(*loads); err != nil {
			return err
		}
	}

	emit := func(tables []*report.Table, plots []*report.Plot) {
		for _, t := range tables {
			if *csv {
				fmt.Print(t.CSV())
				fmt.Println()
			} else {
				fmt.Println(t)
			}
		}
		if !*csv {
			for _, p := range plots {
				fmt.Println(p)
			}
		}
	}

	switch *figure {
	case 2:
		if *seeds != "" {
			list, err := cli.ParseSeeds(*seeds)
			if err != nil {
				return err
			}
			t, err := experiments.Fig2Confidence(opt, list)
			if err != nil {
				return err
			}
			emit([]*report.Table{t}, nil)
			return nil
		}
		lat, cdf, plot, err := experiments.Fig2(opt)
		if err != nil {
			return err
		}
		emit([]*report.Table{lat, cdf}, []*report.Plot{plot})
	case 3:
		lat, cdf, plot, err := experiments.Fig3(opt)
		if err != nil {
			return err
		}
		emit([]*report.Table{lat, cdf}, []*report.Plot{plot})
	case 4:
		t, plot, err := experiments.Fig4(opt)
		if err != nil {
			return err
		}
		emit([]*report.Table{t}, []*report.Plot{plot})
	default:
		return fmt.Errorf("unknown figure %d (want 2, 3 or 4)", *figure)
	}
	return nil
}
