// Command qosreport archives and compares run results. Use qosim -json to
// write a snapshot; qosreport diff flags metric regressions between two
// snapshots — the building block of a performance CI gate for the
// simulator itself.
//
// Examples:
//
//	qosim -topo small -load 1.0 -json before.json
//	... change the code ...
//	qosim -topo small -load 1.0 -json after.json
//	qosreport -before before.json -after after.json -tolerance 0.1
//
// Exit status 1 when deltas beyond the tolerance exist (CI-friendly).
package main

import (
	"flag"
	"fmt"
	"os"

	"deadlineqos/internal/cli"
	"deadlineqos/internal/report"
	"deadlineqos/internal/stats"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "qosreport:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run() (int, error) {
	var (
		beforePath = flag.String("before", "", "baseline snapshot (from qosim -json)")
		afterPath  = flag.String("after", "", "candidate snapshot")
		tolerance  = flag.Float64("tolerance", 0.10, "relative change beyond which a metric is flagged")
	)
	prof := cli.ProfileFlags()
	flag.Parse()
	if err := prof.Start(); err != nil {
		return 0, err
	}
	defer prof.Stop()
	if *beforePath == "" || *afterPath == "" {
		return 0, fmt.Errorf("both -before and -after are required")
	}
	if *tolerance <= 0 {
		return 0, fmt.Errorf("tolerance must be positive")
	}

	before, err := load(*beforePath)
	if err != nil {
		return 0, err
	}
	after, err := load(*afterPath)
	if err != nil {
		return 0, err
	}

	deltas := stats.Compare(before, after, *tolerance)
	if len(deltas) == 0 {
		fmt.Printf("no metric moved more than %.0f%% between %q and %q\n",
			100**tolerance, before.Label, after.Label)
		return 0, nil
	}
	t := report.NewTable(
		fmt.Sprintf("metric changes beyond %.0f%% (%q -> %q)", 100**tolerance, before.Label, after.Label),
		"class", "metric", "before", "after", "change")
	for _, d := range deltas {
		t.Add(d.Class, d.Metric,
			fmt.Sprintf("%.4g", d.Before),
			fmt.Sprintf("%.4g", d.After),
			fmt.Sprintf("%+.1f%%", 100*d.Rel))
	}
	fmt.Println(t)
	return 1, nil
}

func load(path string) (*stats.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return stats.ReadSnapshot(f)
}
