// Command qostrace runs one simulation with full observability switched
// on — packet-lifecycle tracing of a sampled packet subset, periodic
// per-port telemetry probes, and engine profiling — and writes the
// artefacts for offline analysis:
//
//	<out>/trace.jsonl        one JSON object per lifecycle event
//	<out>/trace_chrome.json  Chrome trace_event JSON — load in Perfetto
//	                         (https://ui.perfetto.dev) or chrome://tracing
//	<out>/telemetry.csv      per-switch/per-port probe series
//	<out>/telemetry.json     full telemetry (ports + engine series)
//
// On stdout it prints the per-class summary (latency and deadline-slack
// quantile ladders, miss rates), the per-hop dequeue-slack table, and a
// one-line engine profile.
//
// Examples:
//
//	qostrace -topo small -arch advanced -sample 0.05 -out /tmp/qostrace
//	qostrace -arch traditional -load 1.0 -sample 0.01 -probe 100us -out trace_out
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/cli"
	"deadlineqos/internal/coflow"
	"deadlineqos/internal/metrics"
	"deadlineqos/internal/network"
	"deadlineqos/internal/policy"
	"deadlineqos/internal/report"
	"deadlineqos/internal/trace"
	"deadlineqos/internal/units"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qostrace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		archName  = flag.String("arch", "advanced", "switch architecture: traditional|traditional4|ideal|simple|advanced")
		topoSpec  = flag.String("topo", "small", "topology: paper|small|clos:L,D,U|tree:K,N|single:N")
		load      = flag.Float64("load", 0.8, "offered load per host as a fraction of link bandwidth")
		shards    = cli.ShardsFlag()
		seed      = flag.Uint64("seed", 1, "random seed (also drives packet sampling)")
		warmup    = flag.String("warmup", "2ms", "warm-up period excluded from measurement")
		measure   = flag.String("measure", "20ms", "measurement window")
		sample    = flag.Float64("sample", 0.02, "fraction of packets to trace, in [0,1]")
		probe     = flag.String("probe", "100us", "telemetry probe interval (0 disables probing)")
		maxEvents = flag.Int("maxevents", trace.DefaultMaxEvents, "trace event capacity (0 = default)")
		outDir    = flag.String("out", "qostrace_out", "output directory for the trace artefacts")
		polName   = cli.PolicyFlag()
		coflows   = cli.CoflowsFlag()

		metricsAddr = cli.MetricsAddrFlag()
		prof        = cli.ProfileFlags()
	)
	flag.Parse()
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()

	a, err := arch.Parse(*archName)
	if err != nil {
		return err
	}
	topo, err := cli.ParseTopology(*topoSpec)
	if err != nil {
		return err
	}
	cfg := network.DefaultConfig()
	cfg.Arch = a
	cfg.Topology = topo
	cfg.Load = *load
	cfg.Seed = *seed
	cfg.Shards = *shards
	if cfg.WarmUp, err = cli.ParseDuration(*warmup); err != nil {
		return err
	}
	if cfg.Measure, err = cli.ParseDuration(*measure); err != nil {
		return err
	}
	if cfg.ProbeInterval, err = cli.ParseDuration(*probe); err != nil {
		return err
	}
	if cfg.Policy, err = policy.Parse(*polName); err != nil {
		return err
	}
	if *coflows {
		cfg.Coflows = &coflow.Config{StartAt: cfg.WarmUp}
	}
	if topo.Hosts() < 32 {
		cfg.ControlDests = min(cfg.ControlDests, topo.Hosts()-1)
		cfg.BEDests = min(cfg.BEDests, topo.Hosts()-1)
	}
	// The take-over and order-error observers only fire on tracked
	// buffers; a tracing run wants them.
	cfg.TrackOrderErrors = true

	tr, err := trace.New(trace.Config{SampleRate: *sample, Seed: *seed, MaxEvents: *maxEvents})
	if err != nil {
		return err
	}
	cfg.Tracer = tr
	if *metricsAddr != "" {
		cfg.Metrics = metrics.NewRegistry()
		srv, err := cli.StartMetrics(*metricsAddr, cfg.Metrics)
		if err != nil {
			return err
		}
		defer srv.Close()
	}

	fmt.Printf("topology=%s arch=%s policy=%s load=%.0f%% seed=%d window=[%v, %v] sample=%.3g probe=%v\n",
		topo.Name(), a, cfg.Policy.Name(), 100*cfg.Load, cfg.Seed, cfg.WarmUp, cfg.WarmUp+cfg.Measure,
		*sample, cfg.ProbeInterval)

	res, err := network.Run(cfg)
	if err != nil {
		return err
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	writeFile := func(name string, write func(w io.Writer) error) error {
		path := filepath.Join(*outDir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", path, err)
		}
		return f.Close()
	}
	if err := writeFile("trace.jsonl", tr.WriteJSONL); err != nil {
		return err
	}
	if err := writeFile("trace_chrome.json", tr.WriteChromeTrace); err != nil {
		return err
	}
	if tel := res.Telemetry; tel != nil {
		if err := writeFile("telemetry.csv", tel.WriteCSV); err != nil {
			return err
		}
		if err := writeFile("telemetry.json", tel.WriteJSON); err != nil {
			return err
		}
	}

	fmt.Println(report.PerClassTable("per-class results", res.Collector))

	if hs := tr.HopSlack(); len(hs) > 0 {
		t := report.NewTable("dequeue slack per hop (sampled packets)",
			"hop", "dequeues", "slack avg", "slack min", "slack max")
		for _, h := range hs {
			t.Add(fmt.Sprintf("%d", h.Hop), fmt.Sprintf("%d", h.Count),
				units.Time(h.MeanNs).String(), units.Time(h.MinNs).String(),
				units.Time(h.MaxNs).String())
		}
		fmt.Println(t)
	}

	dropNote := ""
	if d := tr.Dropped(); d > 0 {
		dropNote = fmt.Sprintf(" (%d dropped at the %d-event cap — raise -maxevents or lower -sample)", d, *maxEvents)
	}
	fmt.Printf("trace: %d sampled packets, %d events%s\n", tr.SampledPackets(), len(tr.Events()), dropNote)
	if res.Telemetry != nil {
		fmt.Printf("telemetry: %d port samples, %d engine samples every %v\n",
			len(res.Telemetry.Ports), len(res.Telemetry.Engine), res.Telemetry.Interval)
	}
	if c := res.Coflows; c != nil {
		completion := "incomplete"
		if c.AllDone {
			completion = c.CompletionTime.String()
		}
		fmt.Printf("coflows: %d rounds (%d admitted, %d rejected), %d completed, %d met deadline, completion=%s\n",
			c.Coflows, c.Admitted, c.Rejected, c.Completed, c.DeadlineMet, completion)
	}
	if res.Conservation.EvictedAtNIC > 0 {
		fmt.Printf("policy: %d NIC evictions, weighted goodput %.3f\n",
			res.Conservation.EvictedAtNIC, res.WeightedGoodput())
	}
	fmt.Printf("profile: %v\n", &res.Perf)
	fmt.Printf("artefacts in %s: trace.jsonl trace_chrome.json telemetry.csv telemetry.json\n", *outDir)
	return nil
}
