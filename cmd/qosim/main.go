// Command qosim runs a single simulation of the deadline-based QoS network
// and prints per-class performance indices.
//
// Examples:
//
//	qosim -arch advanced -load 1.0 -topo paper -measure 50ms
//	qosim -arch traditional -load 0.8 -topo small -track
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/cli"
	"deadlineqos/internal/coflow"
	"deadlineqos/internal/network"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/policy"
	"deadlineqos/internal/report"
	"deadlineqos/internal/traffic"
	"deadlineqos/internal/units"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qosim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		archName = flag.String("arch", "advanced", "switch architecture: traditional|ideal|simple|advanced")
		topoSpec = flag.String("topo", "paper", "topology: paper|small|clos:L,D,U|tree:K,N|single:N")
		load     = flag.Float64("load", 1.0, "offered load per host as a fraction of link bandwidth")
		shards   = cli.ShardsFlag()
		seed     = flag.Uint64("seed", 1, "random seed")
		warmup   = flag.String("warmup", "5ms", "warm-up period excluded from measurement")
		measure  = flag.String("measure", "50ms", "measurement window")
		track    = flag.Bool("track", false, "enable the order-error measurement oracle (slower)")
		polName  = cli.PolicyFlag()
		coflows  = cli.CoflowsFlag()
		skew     = flag.String("skew", "0", "max per-node clock skew (e.g. 5us)")
		trace    = flag.String("videotrace", "", "MPEG frame-size trace file for video streams (see traffic.LoadFrameTrace)")
		dump     = flag.String("dump", "", "write a per-packet event CSV (generated/injected/delivered) to this file")
		jsonOut  = flag.String("json", "", "write a result snapshot (see cmd/qosreport) to this file")
	)
	prof := cli.ProfileFlags()
	flag.Parse()
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()

	a, err := arch.Parse(*archName)
	if err != nil {
		return err
	}
	topo, err := cli.ParseTopology(*topoSpec)
	if err != nil {
		return err
	}
	cfg := network.DefaultConfig()
	cfg.Arch = a
	cfg.Topology = topo
	cfg.Load = *load
	cfg.Seed = *seed
	cfg.Shards = *shards
	cfg.TrackOrderErrors = *track
	if cfg.WarmUp, err = cli.ParseDuration(*warmup); err != nil {
		return err
	}
	if cfg.Measure, err = cli.ParseDuration(*measure); err != nil {
		return err
	}
	if cfg.ClockSkewMax, err = cli.ParseDuration(*skew); err != nil {
		return err
	}
	if cfg.Policy, err = policy.Parse(*polName); err != nil {
		return err
	}
	if *coflows {
		cfg.Coflows = &coflow.Config{StartAt: cfg.WarmUp}
	}
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			return err
		}
		frames, err := traffic.LoadFrameTrace(f)
		f.Close()
		if err != nil {
			return err
		}
		cfg.VideoTraceFrames = frames
	}
	if topo.Hosts() < 32 {
		// Small networks cannot spread flows over the default fan-out.
		cfg.ControlDests = min(cfg.ControlDests, topo.Hosts()-1)
		cfg.BEDests = min(cfg.BEDests, topo.Hosts()-1)
	}

	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		defer func() {
			w.Flush()
			f.Close()
		}()
		fmt.Fprintln(w, "event,time_ns,id,flow,class,src,dst,size,seq,deadline_ns,frame")
		line := func(ev string, p *packet.Packet, at units.Time) {
			fmt.Fprintf(w, "%s,%d,%d,%d,%s,%d,%d,%d,%d,%d,%d\n",
				ev, int64(at), p.ID, p.Flow, p.Class, p.Src, p.Dst,
				int64(p.Size), p.Seq, int64(p.Deadline), p.FrameID)
		}
		cfg.Trace = network.Trace{
			Generated: func(p *packet.Packet) { line("gen", p, p.CreatedAt) },
			Injected:  func(p *packet.Packet, at units.Time) { line("inj", p, at) },
			Delivered: func(p *packet.Packet, at units.Time) { line("dlv", p, at) },
		}
	}

	fmt.Printf("topology=%s arch=%s policy=%s load=%.0f%% seed=%d window=[%v, %v]\n",
		topo.Name(), a, cfg.Policy.Name(), 100*cfg.Load, cfg.Seed, cfg.WarmUp, cfg.WarmUp+cfg.Measure)
	res, err := network.Run(cfg)
	if err != nil {
		return err
	}

	t := report.NewTable("per-class results",
		"class", "generated", "delivered", "throughput", "avg lat", "p99 lat", "max lat", "jitter", "frame lat")
	for c := packet.Class(0); c < packet.NumClasses; c++ {
		cs := &res.PerClass[c]
		frame := "-"
		if cs.FrameLatency.Count() > 0 {
			frame = units.Time(cs.FrameLatency.Mean()).String()
		}
		t.Add(c.String(),
			fmt.Sprintf("%d", cs.GeneratedPackets),
			fmt.Sprintf("%d", cs.DeliveredPackets),
			fmt.Sprintf("%.1f%%", 100*res.Throughput(c)),
			units.Time(cs.PacketLatency.Mean()).String(),
			cs.LatencyHist.Quantile(0.99).String(),
			units.Time(cs.PacketLatency.Max()).String(),
			units.Time(cs.Jitter.Mean()).String(),
			frame)
	}
	fmt.Println(t)
	fmt.Printf("events=%d xbar=%d sends=%d pending=%d videoStreams/host=%d\n",
		res.SimEvents, res.XbarTransfers, res.LinkSends, res.PendingAtHorizon, res.VideoStreamsPerHost)
	if *track {
		fmt.Printf("orderErrors=%d takeOvers=%d\n", res.OrderErrors, res.TakeOvers)
	}
	if c := res.Coflows; c != nil {
		completion := "incomplete"
		if c.AllDone {
			completion = c.CompletionTime.String()
		}
		fmt.Printf("coflows=%d admitted=%d rejected=%d completed=%d deadlineMet=%d completion=%s\n",
			c.Coflows, c.Admitted, c.Rejected, c.Completed, c.DeadlineMet, completion)
	}
	if res.Conservation.EvictedAtNIC > 0 {
		fmt.Printf("policyEvictions=%d weightedGoodput=%.3f\n",
			res.Conservation.EvictedAtNIC, res.WeightedGoodput())
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		label := fmt.Sprintf("%s arch=%s load=%.2f seed=%d", topo.Name(), a.Flag(), cfg.Load, cfg.Seed)
		if err := res.Snapshot(label).WriteJSON(f); err != nil {
			return err
		}
	}
	return nil
}
