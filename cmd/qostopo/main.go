// Command qostopo inspects a topology: wiring summary, path diversity and
// example routes. It is the debugging companion for experiment
// configurations.
//
// Examples:
//
//	qostopo -topo paper
//	qostopo -topo tree:4,3 -route 0:63
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"deadlineqos/internal/cli"
	"deadlineqos/internal/report"
	"deadlineqos/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qostopo:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		topoSpec = flag.String("topo", "paper", "topology: paper|small|clos:L,D,U|tree:K,N|single:N")
		route    = flag.String("route", "", "print all minimal paths for a pair, e.g. 0:127")
	)
	prof := cli.ProfileFlags()
	flag.Parse()
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()

	topo, err := cli.ParseTopology(*topoSpec)
	if err != nil {
		return err
	}

	fmt.Printf("topology %s: %d hosts, %d switches\n\n",
		topo.Name(), topo.Hosts(), topo.Switches())

	// Wiring census.
	links, unwired := 0, 0
	radixCount := map[int]int{}
	for sw := 0; sw < topo.Switches(); sw++ {
		radixCount[topo.Radix(sw)]++
		for p := 0; p < topo.Radix(sw); p++ {
			ref := topo.Peer(sw, p)
			switch {
			case ref.ID == -1:
				unwired++
			case ref.IsHost:
				links++ // host attachment (bidirectional pair)
			default:
				links++ // each switch-switch direction counted once per side
			}
		}
	}
	t := report.NewTable("wiring census", "metric", "value")
	for radix, n := range radixCount {
		t.Add(fmt.Sprintf("switches with %d ports", radix), fmt.Sprintf("%d", n))
	}
	t.Add("wired switch ports", fmt.Sprintf("%d", links))
	t.Add("unwired switch ports", fmt.Sprintf("%d", unwired))
	fmt.Println(t)

	// Path diversity statistics over a sample of pairs.
	minPaths, maxPaths, sumPaths, pairs := 1<<30, 0, 0, 0
	maxHops := 0
	step := topo.Hosts()/16 + 1
	for src := 0; src < topo.Hosts(); src += step {
		for dst := 0; dst < topo.Hosts(); dst += step {
			if src == dst {
				continue
			}
			n := topo.PathCount(src, dst)
			if n < minPaths {
				minPaths = n
			}
			if n > maxPaths {
				maxPaths = n
			}
			sumPaths += n
			pairs++
			if h := len(topo.Path(src, dst, 0)); h > maxHops {
				maxHops = h
			}
		}
	}
	d := report.NewTable("path diversity (sampled pairs)", "metric", "value")
	d.Add("sampled pairs", fmt.Sprintf("%d", pairs))
	d.Add("min minimal paths", fmt.Sprintf("%d", minPaths))
	d.Add("max minimal paths", fmt.Sprintf("%d", maxPaths))
	d.Add("avg minimal paths", fmt.Sprintf("%.1f", float64(sumPaths)/float64(pairs)))
	d.Add("max switch hops", fmt.Sprintf("%d", maxHops))
	fmt.Println(d)

	if *route != "" {
		var src, dst int
		if _, err := fmt.Sscanf(*route, "%d:%d", &src, &dst); err != nil {
			return fmt.Errorf("bad route spec %q (want SRC:DST)", *route)
		}
		if src < 0 || dst < 0 || src >= topo.Hosts() || dst >= topo.Hosts() || src == dst {
			return fmt.Errorf("route pair %d:%d out of range", src, dst)
		}
		fmt.Printf("minimal paths %d -> %d:\n", src, dst)
		for c := 0; c < topo.PathCount(src, dst); c++ {
			fmt.Printf("  choice %2d: %s\n", c, renderPath(topo.Path(src, dst, c)))
		}
	}
	return nil
}

func renderPath(hops []topology.Hop) string {
	var parts []string
	for _, h := range hops {
		parts = append(parts, fmt.Sprintf("sw%d.p%d", h.Switch, h.OutPort))
	}
	return strings.Join(parts, " -> ")
}
