// Command qoschurn runs a dynamic-session (churn) simulation: every host
// generates Poisson session arrivals that negotiate admission with the
// centralised CAC over in-band Control-class messages, hold their grant for
// an exponential time, and tear down — while the Table 1 mix loads the
// fabric. Optional bandwidth derates exercise the CAC's revocation path.
// The run is audited against the packet-conservation invariant; a violation
// exits non-zero, so the command doubles as a CI smoke check.
//
// Examples:
//
//	qoschurn -arch advanced -topo small -load 0.6
//	qoschurn -load 1.0 -inter 60us -hold 3ms          # saturate the CAC
//	qoschurn -derates 4 -faultseed 3                  # revocation under faults
//	qoschurn -flash 8 -flashat 2ms -flashlen 2ms      # flash crowd
//	qoschurn -delegate -local 0.7 -flash 6            # per-pod CAC delegates
package main

import (
	"flag"
	"fmt"
	"os"

	"deadlineqos/internal/arch"
	"deadlineqos/internal/cli"
	"deadlineqos/internal/coflow"
	"deadlineqos/internal/faults"
	"deadlineqos/internal/metrics"
	"deadlineqos/internal/network"
	"deadlineqos/internal/packet"
	"deadlineqos/internal/policy"
	"deadlineqos/internal/report"
	"deadlineqos/internal/session"
	"deadlineqos/internal/units"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qoschurn:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		archName  = flag.String("arch", "advanced", "switch architecture: traditional|ideal|simple|advanced")
		topoSpec  = flag.String("topo", "small", "topology: paper|small|clos:L,D,U|tree:K,N|single:N")
		load      = flag.Float64("load", 0.6, "static background load per host as a fraction of link bandwidth")
		shards    = cli.ShardsFlag()
		seed      = flag.Uint64("seed", 1, "random seed")
		warmup    = flag.String("warmup", "1ms", "warm-up period excluded from measurement")
		measure   = flag.String("measure", "10ms", "measurement window")
		inter     = flag.String("inter", "200us", "mean per-host session inter-arrival time")
		hold      = flag.String("hold", "2ms", "mean session hold time")
		manager   = flag.Int("manager", 0, "host index running the CAC endpoint")
		delegate  = flag.Bool("delegate", false, "run per-pod CAC delegates under the root (survivable control plane)")
		local     = flag.Float64("local", 0, "fraction of session destinations kept intra-pod (needs -delegate)")
		ctlSvc    = flag.String("ctlservice", "", "per-request CAC service time (e.g. 500ns; empty = default)")
		ctlQueue  = flag.Int("ctlqueue", 0, "CAC control-queue capacity before shedding (0 = default)")
		flash     = flag.Float64("flash", 0, "flash-crowd arrival-rate multiplier (0 = off)")
		flashAt   = flag.String("flashat", "2ms", "flash-crowd window start")
		flashLen  = flag.String("flashlen", "2ms", "flash-crowd window length")
		derates   = flag.Int("derates", 0, "number of bandwidth derate/restore pairs to schedule")
		faultSeed = flag.Uint64("faultseed", 1, "fault-plan seed (independent of the traffic seed)")
		probe     = flag.String("probe", "", "telemetry probe interval (e.g. 100us; empty = off)")
		csvPath   = flag.String("csv", "", "write the session time series as CSV to this file (needs -probe)")
		polName   = cli.PolicyFlag()
		coflows   = cli.CoflowsFlag()

		metricsAddr = cli.MetricsAddrFlag()
		prof        = cli.ProfileFlags()
	)
	flag.Parse()
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()

	a, err := arch.Parse(*archName)
	if err != nil {
		return err
	}
	topo, err := cli.ParseTopology(*topoSpec)
	if err != nil {
		return err
	}
	cfg := network.DefaultConfig()
	cfg.Arch = a
	cfg.Topology = topo
	cfg.Load = *load
	cfg.Seed = *seed
	cfg.Shards = *shards
	cfg.CheckInvariants = true
	if cfg.WarmUp, err = cli.ParseDuration(*warmup); err != nil {
		return err
	}
	if cfg.Measure, err = cli.ParseDuration(*measure); err != nil {
		return err
	}
	if topo.Hosts() < 32 {
		cfg.ControlDests = min(cfg.ControlDests, topo.Hosts()-1)
		cfg.BEDests = min(cfg.BEDests, topo.Hosts()-1)
	}

	scfg := session.Config{Manager: *manager}
	if scfg.InterArrival, err = cli.ParseDuration(*inter); err != nil {
		return err
	}
	if scfg.HoldMean, err = cli.ParseDuration(*hold); err != nil {
		return err
	}
	if *flash > 0 {
		scfg.FlashFactor = *flash
		if scfg.FlashAt, err = cli.ParseDuration(*flashAt); err != nil {
			return err
		}
		if scfg.FlashLen, err = cli.ParseDuration(*flashLen); err != nil {
			return err
		}
	}
	if *delegate {
		scfg.Delegation = true
		scfg.LocalFrac = *local
	} else if *local != 0 {
		return fmt.Errorf("-local needs -delegate")
	}
	if *ctlSvc != "" {
		if scfg.CtlService, err = cli.ParseDuration(*ctlSvc); err != nil {
			return err
		}
	}
	scfg.CtlQueueCap = *ctlQueue
	cfg.Sessions = &scfg
	if cfg.Policy, err = policy.Parse(*polName); err != nil {
		return err
	}
	if *coflows {
		cfg.Coflows = &coflow.Config{StartAt: cfg.WarmUp}
	}

	horizon := cfg.WarmUp + cfg.Measure
	if *derates > 0 {
		// Derate/restore epochs only: every fault exercises the CAC's
		// revocation path, not the loss-recovery machinery.
		var ids []faults.LinkID
		for sw := 0; sw < topo.Switches(); sw++ {
			for p := 0; p < topo.Radix(sw); p++ {
				if topo.Peer(sw, p).ID != -1 {
					ids = append(ids, faults.LinkID{Switch: sw, Port: p})
				}
			}
		}
		cfg.Faults = faults.RandomPlan(*faultSeed, ids, horizon, faults.RandomConfig{
			Derates:  *derates,
			MinScale: 0.3,
		})
	}
	if *probe != "" {
		if cfg.ProbeInterval, err = cli.ParseDuration(*probe); err != nil {
			return err
		}
	}
	if *metricsAddr != "" {
		cfg.Metrics = metrics.NewRegistry()
		if cfg.ProbeInterval <= 0 {
			// The metrics plane publishes on the probe cadence; give the
			// scrape server something live to show.
			cfg.ProbeInterval = 100 * units.Microsecond
		}
		srv, err := cli.StartMetrics(*metricsAddr, cfg.Metrics)
		if err != nil {
			return err
		}
		defer srv.Close()
	}

	fmt.Printf("topology=%s arch=%s load=%.0f%% seed=%d shards=%d window=[%v, %v]\n",
		topo.Name(), a, 100*cfg.Load, cfg.Seed, cfg.Shards, cfg.WarmUp, horizon)
	fmt.Printf("sessions: inter-arrival=%v hold=%v manager=%d flash=%.1fx derates=%d delegate=%v\n",
		scfg.InterArrival, scfg.HoldMean, *manager, *flash, *derates, *delegate)

	res, err := network.Run(cfg)
	if err != nil {
		return err
	}
	s := res.Sessions

	t := report.NewTable("session lifecycle",
		"started", "granted", "rejected", "retries", "timeouts", "downgraded",
		"finished", "released", "active at stop")
	t.Add(fmt.Sprintf("%d", s.Started), fmt.Sprintf("%d", s.Granted),
		fmt.Sprintf("%d", s.Rejected), fmt.Sprintf("%d", s.Retries),
		fmt.Sprintf("%d", s.Timeouts), fmt.Sprintf("%d", s.Downgraded),
		fmt.Sprintf("%d", s.Finished), fmt.Sprintf("%d", s.Released),
		fmt.Sprintf("%d", s.ActiveAtStop))
	fmt.Println(t)

	fmt.Printf("admission: accept ratio %.3f, setup latency mean %v p50 %v p99 %v (%d samples)\n",
		s.AcceptRatio, units.Time(s.SetupMeanNs), s.SetupP50, s.SetupP99, s.SetupCount)
	fmt.Printf("utilisation: reserved %.1f%% achieved %.1f%% of injection capacity\n",
		100*s.ReservedUtil, 100*s.AchievedUtil)
	fmt.Printf("revocation: revoked=%d rerouted=%d downgraded=%d stale teardowns=%d\n",
		s.Revoked, s.Rerouted, s.RevokeDowngrades, s.StaleTears)
	if cp := res.ControlPlane; cp != nil && cp.Delegated {
		fmt.Printf("control plane: %d pods, %d delegates, local grants %d, escalated %d, shed %d\n",
			cp.Pods, cp.Delegates, cp.LocalGrants, cp.Escalated, cp.Shed)
		fmt.Printf("leases: granted=%d requested=%d denied=%d returned=%d renewals=%d\n",
			cp.LeaseGrants, cp.LeaseRequests, cp.LeaseDenied, cp.LeaseReturns, cp.LeaseRenewals)
		fmt.Printf("failover: promotions=%d reclaims=%d replays=%d breaker opens=%d breaker rejects=%d\n",
			cp.Promotions, cp.Reclaims, cp.FailoverReplays, cp.BreakerOpens, cp.BreakerRejects)
		if cp.FailoverCount > 0 {
			fmt.Printf("failover TTR: p50 %v p99 %v (%d failovers)\n",
				cp.FailoverP50, cp.FailoverP99, cp.FailoverCount)
		}
	}
	fmt.Printf("traffic: data %d pkts (%v), signalling %d pkts (%v)\n",
		s.DataPackets, s.DataBytes, s.SigPackets, s.SigBytes)
	ctrl := &res.PerClass[packet.Control]
	fmt.Printf("control class: avg %v p99 %v\n",
		units.Time(ctrl.PacketLatency.Mean()), ctrl.LatencyHist.Quantile(0.99))

	if *csvPath != "" {
		if res.Telemetry == nil {
			return fmt.Errorf("-csv needs -probe to record the session series")
		}
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		if err := res.Telemetry.WriteSessionsCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("session series: %d samples -> %s\n", len(res.Telemetry.Sessions), *csvPath)
	}

	if err := res.Conservation.Check(); err != nil {
		return err
	}
	fmt.Println("conservation: OK")
	return nil
}
