// Command qossoak runs the randomized fault-and-churn soak harness: a
// sequence of independent epochs, each an 8 ms network run with switch
// outages, port cuts, link flaps, derates, bit errors and dynamic session
// churn, audited after every epoch against the packet-conservation books,
// the structural invariants (switch buffer pools, link credit bounds, the
// admission ledger) and deadline-statistics sanity.
//
// Every epoch derives from (seed, epoch index) alone, so a violation is
// reported with an exact single-epoch replay command that reproduces it
// byte-identically — at any shard count. A failed invariant exits
// non-zero: the command doubles as a robustness gate in CI.
//
// With -metrics-addr the soak serves its live metrics plane over HTTP
// (Prometheus text, JSON, expvar, pprof) while it runs; with -flightrec
// it arms a flight recorder whose recent-event window is dumped to disk
// when an epoch trips an invariant or the deadline-miss-burst SLO.
//
// Examples:
//
//	qossoak -seed 1 -epochs 8
//	qossoak -seed 7 -epochs 4 -shards 4 -switch-faults 3
//	qossoak -seed 7 -first-epoch 2 -epochs 1   (replay one failed epoch)
//	qossoak -epochs 100 -metrics-addr :9100 -flightrec flightrec.jsonl -miss-burst 64
//	qossoak -rogues 2 -police                  (rogue hosts vs the NIC policer)
package main

import (
	"flag"
	"fmt"
	"os"

	"deadlineqos/internal/cli"
	"deadlineqos/internal/metrics"
	"deadlineqos/internal/soak"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qossoak:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed         = flag.Uint64("seed", 1, "master seed; epoch e runs with a seed derived from (seed, e)")
		epochs       = flag.Int("epochs", 4, "number of epochs to run")
		firstEpoch   = flag.Int("first-epoch", 0, "index of the first epoch (for replaying a single epoch)")
		shards       = cli.ShardsFlag()
		load         = flag.Float64("load", 0.8, "offered load per host as a fraction of link bandwidth")
		warmup       = flag.String("warmup", "1ms", "per-epoch warm-up period excluded from measurement")
		measure      = flag.String("measure", "8ms", "per-epoch measurement window")
		switchFaults = flag.Int("switch-faults", 2, "switch outage pairs per epoch")
		flaps        = flag.Int("flaps", 3, "link flap pairs per epoch")
		derates      = flag.Int("derates", 2, "bandwidth derate pairs per epoch")
		polName      = cli.PolicyFlag()
		coflows      = flag.Bool("coflows", false, "attach the ring coflow workload (sigma-order admission) to every epoch")
		rogues       = flag.Int("rogues", 0, "RogueFlow misbehaviour windows per epoch")
		forges       = flag.Int("forges", 0, "DeadlineForge misbehaviour windows per epoch")
		police       = flag.Bool("police", false, "enforce per-flow token-bucket policing at NIC ingress")
		metricsAddr  = cli.MetricsAddrFlag()
		flightrec    = flag.String("flightrec", "", "arm the flight recorder; dump the event window to this file on an invariant trip or deadline-miss burst")
		missBurst    = flag.Int("miss-burst", 0, "trip the flight recorder when this many deadline misses land within -miss-window (0 = off)")
		missWindow   = flag.String("miss-window", "1ms", "deadline-miss-burst window")
		injectFail   = flag.Bool("inject-failure", false, "fail the first epoch's audit with a synthetic violation (exercises the flight-dump path; exits non-zero)")
		prof         = cli.ProfileFlags()
	)
	flag.Parse()
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()

	opt := soak.Options{
		Seed:         *seed,
		Epochs:       *epochs,
		FirstEpoch:   *firstEpoch,
		Shards:       *shards,
		Load:         *load,
		SwitchFaults: *switchFaults,
		Flaps:        *flaps,
		Derates:      *derates,
		Policy:       *polName,
		Coflows:      *coflows,
		Rogues:       *rogues,
		Forges:       *forges,
		Police:       *police,
		Log: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}
	var err error
	if opt.WarmUp, err = cli.ParseDuration(*warmup); err != nil {
		return err
	}
	if opt.Measure, err = cli.ParseDuration(*measure); err != nil {
		return err
	}
	opt.FlightPath = *flightrec
	opt.MissBurstCount = *missBurst
	opt.InjectFailure = *injectFail
	if opt.MissBurstWindow, err = cli.ParseDuration(*missWindow); err != nil {
		return err
	}
	if *metricsAddr != "" {
		opt.Metrics = metrics.NewRegistry()
		srv, err := cli.StartMetrics(*metricsAddr, opt.Metrics)
		if err != nil {
			return err
		}
		defer srv.Close()
	}

	fmt.Printf("soak: seed=%d epochs=[%d, %d) shards=%d load=%.0f%% window=%v+%v faults[switch=%d flaps=%d derates=%d]\n",
		opt.Seed, opt.FirstEpoch, opt.FirstEpoch+opt.Epochs, opt.Shards,
		100*opt.Load, opt.WarmUp, opt.Measure, opt.SwitchFaults, opt.Flaps, opt.Derates)

	rep, err := soak.Run(opt)
	if err != nil {
		return err
	}
	fmt.Printf("soak: %d epochs clean\n", len(rep.Epochs))
	return nil
}
