package deadlineqos_test

import (
	"fmt"

	"deadlineqos"
)

// ExampleNewTakeOverQueue demonstrates the paper's two-queue buffer on the
// §3.4 scenario: a late burst of low-deadline packets overtakes queued
// high-deadline ones, without reordering either flow.
func ExampleNewTakeOverQueue() {
	q := deadlineqos.NewTakeOverQueue(deadlineqos.Kilobyte, true)
	// Flow 1 queues two far-deadline packets, then flow 2 arrives with
	// near deadlines.
	q.Push(&deadlineqos.Packet{ID: 1, Flow: 1, Seq: 0, Deadline: 1000, Size: 64})
	q.Push(&deadlineqos.Packet{ID: 2, Flow: 1, Seq: 1, Deadline: 1100, Size: 64})
	q.Push(&deadlineqos.Packet{ID: 3, Flow: 2, Seq: 0, Deadline: 50, Size: 64})
	q.Push(&deadlineqos.Packet{ID: 4, Flow: 2, Seq: 1, Deadline: 60, Size: 64})
	for q.Len() > 0 {
		p := q.Pop()
		fmt.Printf("flow %d seq %d (deadline %d)\n", p.Flow, p.Seq, p.Deadline)
	}
	fmt.Printf("order errors: %d\n", q.OrderErrors())
	// Output:
	// flow 2 seq 0 (deadline 50)
	// flow 2 seq 1 (deadline 60)
	// flow 1 seq 0 (deadline 1000)
	// flow 1 seq 1 (deadline 1100)
	// order errors: 0
}

// ExampleRun shows the minimal simulation loop: build the paper's workload
// on a small network and read per-class results.
func ExampleRun() {
	cfg := deadlineqos.SmallConfig()
	cfg.Arch = deadlineqos.Advanced2VC
	cfg.Load = 0.4
	cfg.WarmUp = 200 * deadlineqos.Microsecond
	cfg.Measure = 2 * deadlineqos.Millisecond

	res, err := deadlineqos.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ctrl := &res.PerClass[deadlineqos.Control]
	fmt.Println("control packets delivered:", ctrl.DeliveredPackets > 0)
	fmt.Println("control latency under 1ms:", ctrl.PacketLatency.Mean() < float64(deadlineqos.Millisecond))
	// Output:
	// control packets delivered: true
	// control latency under 1ms: true
}

// ExampleUnloadedPacketLatency computes the physical latency floor for a
// full MTU packet crossing the paper's three-switch leaf-spine-leaf path.
func ExampleUnloadedPacketLatency() {
	floor := deadlineqos.UnloadedPacketLatency(
		2*deadlineqos.Kilobyte, // wire size
		3,                      // leaf -> spine -> leaf
		deadlineqos.GbpsToBandwidth(8),
		0,                         // crossbar at link rate
		20*deadlineqos.Nanosecond, // propagation per link
	)
	fmt.Println("cross-leaf MTU floor:", floor)
	// Output:
	// cross-leaf MTU floor: 14.42us
}

// ExampleNewFoldedClos inspects the paper's network shape.
func ExampleNewFoldedClos() {
	topo, err := deadlineqos.NewFoldedClos(16, 8, 8) // the paper's MIN
	if err != nil {
		panic(err)
	}
	fmt.Println("hosts:", topo.Hosts())
	fmt.Println("switches:", topo.Switches())
	fmt.Println("paths 0->127:", topo.PathCount(0, 127))
	// Output:
	// hosts: 128
	// switches: 24
	// paths 0->127: 8
}
